#include <gtest/gtest.h>

#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "eco/miter.hpp"
#include "eco/problem.hpp"
#include "eco/satprune.hpp"
#include "eco/support.hpp"
#include "eco/window.hpp"
#include "util/rng.hpp"

namespace eco::core {
namespace {

/// Brute-force minimum-cost feasible divisor subset over the candidates.
int64_t brute_force_min_cost(SupportInstance& inst, const std::vector<Divisor>& divisors,
                             const std::vector<size_t>& candidates) {
  const size_t n = candidates.size();
  EXPECT_LE(n, 12u);
  int64_t best = -1;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int64_t cost = 0;
    std::vector<size_t> subset;
    for (size_t i = 0; i < n; ++i)
      if ((mask >> i) & 1u) {
        subset.push_back(candidates[i]);
        cost += divisors[candidates[i]].cost;
      }
    if (best >= 0 && cost >= best) continue;  // cannot improve
    if (inst.check_subset(subset).is_false()) best = cost;
  }
  return best;
}

// Property: on single-target instances with a trimmed candidate list,
// SAT_prune's result matches the brute-force minimum exactly (paper §3.4.2's
// exactness guarantee for one target).
class SatPruneExactness : public ::testing::TestWithParam<int> {};

TEST_P(SatPruneExactness, MatchesBruteForceMinimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 13);
  int tested = 0;
  for (int iter = 0; iter < 10 && tested < 4; ++iter) {
    const net::Network base = benchgen::make_random_logic(
        5 + static_cast<int>(rng.below(4)), 3 + static_cast<int>(rng.below(3)),
        25 + static_cast<int>(rng.below(40)), rng);
    benchgen::EcoInstance instance;
    try {
      instance = benchgen::make_eco_instance(base, 1, rng);
    } catch (const std::runtime_error&) {
      continue;
    }
    // Random weights 1..9 to make the optimum nontrivial.
    net::WeightMap weights;
    for (const auto& s : instance.impl.all_signals())
      weights.weights.emplace(s, static_cast<int64_t>(1 + rng.below(9)));
    const EcoProblem problem = make_problem(instance.impl, instance.spec, weights);
    const Window window = compute_window(problem);
    if (!window.outside_equal) continue;
    if (window.divisor_indices.empty()) continue;

    // Trim the candidate list to at most 12 entries: all PI divisors first
    // (they always form a sufficient set when the step is feasible), then
    // the cheapest internal ones.
    std::vector<size_t> candidates;
    for (const size_t g : window.divisor_indices)
      if (problem.impl.is_pi(aig::lit_node(problem.divisors[g].lit)))
        candidates.push_back(g);
    if (candidates.size() > 12) continue;  // too many PIs for brute force
    for (const size_t g : window.divisor_indices) {
      if (candidates.size() >= 12) break;
      if (std::find(candidates.begin(), candidates.end(), g) == candidates.end())
        candidates.push_back(g);
    }
    const EcoMiter miter = build_eco_miter(problem.impl, problem.spec, problem.divisors,
                                           window.affected_pos);
    SupportInstance inst(miter, 0, problem.divisors, candidates);
    if (!inst.check_subset(candidates).is_false()) continue;

    const int64_t brute = brute_force_min_cost(inst, problem.divisors, candidates);
    ASSERT_GE(brute, 0);

    const SatPruneResult pruned = sat_prune(inst, problem.divisors, SatPruneOptions{});
    ASSERT_TRUE(pruned.feasible);
    EXPECT_TRUE(pruned.optimal);
    EXPECT_EQ(pruned.cost, brute) << "seed " << GetParam() << " iter " << iter;
    EXPECT_TRUE(inst.check_subset(pruned.chosen).is_false());
    ++tested;
  }
  EXPECT_GT(tested, 0) << "no instance exercised for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPruneExactness, ::testing::Range(0, 6));

}  // namespace
}  // namespace eco::core
