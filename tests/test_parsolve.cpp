// Tests of sat/parsolve.hpp: the intra-query parallel SAT layer.
//
// The heart is a randomized differential harness: thousands of random
// instances are solved twice, once by a serial oracle (escalation disabled)
// and once with the parallel layer forced to escalate at the first restart
// boundary (trigger 0). Verdicts must match exactly; SAT models must
// satisfy the instance; UNSAT cores must be sound subsets of the
// assumptions (re-solving the oracle under just the core stays UNSAT).
// Deterministic mode is additionally checked for run-to-run identical
// models. The racy hammer drives first-winner cancellation with 8 clones
// over many iterations and reads solver stats back after every solve — a
// use-after-free or publication race here is caught by the TSan CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sat/parsolve.hpp"
#include "sat/solver.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace eco::sat {
namespace {

/// Restores the process-wide parallel-SAT configuration and unregisters the
/// executor on scope exit, so tests cannot leak state into each other.
struct ParGuard {
  ParSolveOptions saved = ParSolveOptions::defaults();
  ~ParGuard() {
    ParSolveOptions::set_defaults(saved);
    set_par_executor(nullptr);
  }
};

/// Forced-escalation configuration: every solve fans out immediately.
ParSolveOptions forced(ParMode mode, ParStrategy strategy, int clones = 4) {
  ParSolveOptions o;
  o.mode = mode;
  o.strategy = strategy;
  o.clones = clones;
  o.trigger_conflicts = 0;  // escalate at the first restart boundary
  return o;
}

struct Instance {
  int num_vars = 0;
  std::vector<LitVec> clauses;
  LitVec assumptions;
};

/// Random 3-SAT-ish instance near the phase transition, so the harness sees
/// a healthy mix of SAT and UNSAT verdicts. Fully determined by the seed.
Instance make_instance(uint64_t seed) {
  Rng rng(SplitMix64::mix(seed));
  Instance ins;
  ins.num_vars = 12 + static_cast<int>(rng.below(18));
  const int num_clauses =
      static_cast<int>(static_cast<double>(ins.num_vars) * (3.0 + rng.uniform() * 2.5));
  for (int c = 0; c < num_clauses; ++c) {
    LitVec clause;
    const int width = rng.chance(1, 8) ? 2 : 3;
    while (static_cast<int>(clause.size()) < width) {
      const Var v = static_cast<Var>(rng.below(static_cast<uint64_t>(ins.num_vars)));
      const Lit l = mk_lit(v, rng.chance(1, 2));
      bool dup = false;
      for (const Lit e : clause) dup |= e.var() == l.var();
      if (!dup) clause.push_back(l);
    }
    ins.clauses.push_back(std::move(clause));
  }
  if (rng.chance(1, 2)) {
    const int k = 1 + static_cast<int>(rng.below(3));
    while (static_cast<int>(ins.assumptions.size()) < k) {
      const Var v = static_cast<Var>(rng.below(static_cast<uint64_t>(ins.num_vars)));
      const Lit l = mk_lit(v, rng.chance(1, 2));
      bool dup = false;
      for (const Lit e : ins.assumptions) dup |= e.var() == l.var();
      if (!dup) ins.assumptions.push_back(l);
    }
  }
  return ins;
}

void load(Solver& s, const Instance& ins) {
  for (int v = 0; v < ins.num_vars; ++v) s.new_var();
  for (const LitVec& c : ins.clauses)
    if (!s.add_clause(c)) return;  // UNSAT at level 0: solve() reports it
}

bool model_satisfies(const Solver& s, const Instance& ins) {
  for (const LitVec& c : ins.clauses) {
    bool sat = false;
    for (const Lit l : c) sat |= s.model_value(l);
    if (!sat) return false;
  }
  for (const Lit l : ins.assumptions)
    if (!s.model_value(l)) return false;
  return true;
}

/// Core soundness against the serial oracle: every core literal was
/// assumed, and the oracle refutes the instance under the core alone.
void check_core(const Solver& par, const Instance& ins) {
  for (const Lit l : par.core()) {
    const bool assumed = std::find(ins.assumptions.begin(), ins.assumptions.end(), l) !=
                         ins.assumptions.end();
    ASSERT_TRUE(assumed) << "core literal was never assumed";
    ASSERT_TRUE(par.in_core(l));
  }
  Solver oracle;
  oracle.set_par_escalation(false);
  load(oracle, ins);
  ASSERT_TRUE(oracle.solve(par.core()).is_false())
      << "parallel core does not refute the instance";
}

/// One differential query: serial oracle vs. forced escalation.
void differential_query(uint64_t seed) {
  const Instance ins = make_instance(seed);

  Solver oracle;
  oracle.set_par_escalation(false);
  load(oracle, ins);
  const LBool serial = oracle.solve(ins.assumptions);

  Solver par;
  load(par, ins);
  const LBool parallel = par.solve(ins.assumptions);

  ASSERT_EQ(serial.raw(), parallel.raw()) << "verdict drift at seed " << seed;
  if (parallel.is_true()) {
    ASSERT_TRUE(model_satisfies(par, ins)) << "bogus model at seed " << seed;
  }
  if (parallel.is_false() && !ins.assumptions.empty()) check_core(par, ins);
}

TEST(ParSolveOptionsTest, ParseParMode) {
  ParMode m = ParMode::kOff;
  EXPECT_TRUE(parse_par_mode("on", m));
  EXPECT_EQ(m, ParMode::kDeterministic);
  EXPECT_TRUE(parse_par_mode("racy", m));
  EXPECT_EQ(m, ParMode::kRacy);
  EXPECT_TRUE(parse_par_mode("off", m));
  EXPECT_EQ(m, ParMode::kOff);
  m = ParMode::kRacy;
  EXPECT_FALSE(parse_par_mode("sideways", m));
  EXPECT_EQ(m, ParMode::kRacy);  // untouched on failure
  EXPECT_FALSE(parse_par_mode("", m));
}

TEST(ParSolveTest, InertWithoutExecutor) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kDeterministic, ParStrategy::kPortfolio));
  // No executor registered: the layer must stay out of the way entirely.
  set_par_executor(nullptr);
  Solver s;
  const Instance ins = make_instance(7);
  load(s, ins);
  (void)s.solve(ins.assumptions);
  EXPECT_EQ(s.stats().par_escalations, 0u);
}

TEST(ParSolveTest, PortfolioEscalatesAndWins) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kDeterministic, ParStrategy::kPortfolio));
  util::Executor ex(4);
  set_par_executor(&ex);
  Solver s;
  const Instance ins = make_instance(42);
  load(s, ins);
  const LBool verdict = s.solve(ins.assumptions);
  EXPECT_FALSE(verdict.is_undef());
  EXPECT_EQ(s.stats().par_escalations, 1u);
  EXPECT_EQ(s.stats().par_portfolio, 1u);
  EXPECT_EQ(s.stats().par_cube, 0u);
  EXPECT_EQ(s.stats().par_wins, 1u);
}

TEST(ParSolveTest, PortfolioDifferentialMatchesSerialOracle) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kDeterministic, ParStrategy::kPortfolio));
  util::Executor ex(4);
  set_par_executor(&ex);
  for (uint64_t q = 0; q < 2000 && !HasFatalFailure(); ++q)
    differential_query(0x9000 + q);
}

TEST(ParSolveTest, CubeDifferentialMatchesSerialOracle) {
  ParGuard guard;
  ParSolveOptions o = forced(ParMode::kDeterministic, ParStrategy::kCube);
  o.cube_vars = 2;  // 4 branches
  ParSolveOptions::set_defaults(o);
  util::Executor ex(4);
  set_par_executor(&ex);
  for (uint64_t q = 0; q < 2000 && !HasFatalFailure(); ++q)
    differential_query(0xC000000 + q);
}

TEST(ParSolveTest, RacyDifferentialMatchesSerialOracle) {
  // Racy mode gives up reproducibility, never correctness: verdicts, models
  // and cores are held to the same oracle as deterministic mode.
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kRacy, ParStrategy::kPortfolio));
  util::Executor ex(4);
  set_par_executor(&ex);
  for (uint64_t q = 0; q < 1000 && !HasFatalFailure(); ++q)
    differential_query(0xACE0000 + q);
}

TEST(ParSolveTest, DeterministicModeIsRunToRunIdentical) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kDeterministic, ParStrategy::kPortfolio));
  util::Executor ex(4);
  set_par_executor(&ex);
  for (uint64_t q = 0; q < 300; ++q) {
    const Instance ins = make_instance(0xDE7 + q);
    auto run = [&](std::vector<bool>& model) {
      Solver s;
      load(s, ins);
      const LBool verdict = s.solve(ins.assumptions);
      if (verdict.is_true())
        for (int v = 0; v < ins.num_vars; ++v)
          model.push_back(s.model_value(static_cast<Var>(v)));
      return verdict;
    };
    std::vector<bool> model_a, model_b;
    const LBool a = run(model_a);
    const LBool b = run(model_b);
    ASSERT_EQ(a.raw(), b.raw()) << "verdict drift across runs at query " << q;
    ASSERT_EQ(model_a, model_b) << "model drift across runs at query " << q;
  }
}

TEST(ParSolveTest, RacyFirstWinnerCancellationHammer) {
  // 8 clones x 1000 iterations of first-winner cancellation, with solver
  // stats read back after every solve. Any use-after-free on the clone
  // results or a racy publication shows up under the TSan CI job.
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kRacy, ParStrategy::kPortfolio, 8));
  util::Executor ex(8);
  set_par_executor(&ex);
  uint64_t sat = 0, unsat = 0, escalations = 0, wins = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Instance ins = make_instance(0xA44E12 + i);
    Solver s;
    load(s, ins);
    const LBool verdict = s.solve(ins.assumptions);
    // Stats readback: every field must be coherent after the race retired.
    const SolverStats& st = s.stats();
    escalations += st.par_escalations;
    wins += st.par_wins;
    if (verdict.is_true()) {
      ++sat;
      ASSERT_TRUE(model_satisfies(s, ins));
    } else if (verdict.is_false()) {
      ++unsat;
      for (const Lit l : s.core()) ASSERT_TRUE(s.in_core(l));
    }
  }
  EXPECT_GT(sat, 0u);
  EXPECT_GT(unsat, 0u);
  EXPECT_GT(escalations, 0u);
  EXPECT_GT(wins, 0u);
}

TEST(ParSolveTest, RacyDegradesToSerialWhenPoolSaturated) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kRacy, ParStrategy::kPortfolio));
  util::Executor ex(2);
  set_par_executor(&ex);
  // Every slot reserved: racy admission is denied, the solve runs serially
  // and the verdict is unaffected.
  ASSERT_EQ(ex.try_reserve(2), 2);
  const Instance ins = make_instance(99);
  Solver oracle;
  oracle.set_par_escalation(false);
  load(oracle, ins);
  Solver s;
  load(s, ins);
  EXPECT_EQ(oracle.solve(ins.assumptions).raw(), s.solve(ins.assumptions).raw());
  EXPECT_EQ(s.stats().par_escalations, 0u);
  ex.release(2);
}

TEST(ParSolveTest, NearExhaustedBudgetStaysSerial) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kDeterministic, ParStrategy::kPortfolio));
  util::Executor ex(4);
  set_par_executor(&ex);
  // With fewer than 4000 conflicts of budget left, clone setup would cost
  // more than the remainder buys: the solve must stay serial.
  const Instance ins = make_instance(1234);
  Solver s;
  load(s, ins);
  s.set_conflict_budget(3000);
  (void)s.solve(ins.assumptions);
  EXPECT_EQ(s.stats().par_escalations, 0u);
}

TEST(ParSolveTest, NegativeTriggerOverrideDisablesEscalation) {
  ParGuard guard;
  ParSolveOptions::set_defaults(forced(ParMode::kDeterministic, ParStrategy::kPortfolio));
  util::Executor ex(4);
  set_par_executor(&ex);
  const Instance ins = make_instance(4321);
  Solver s;
  load(s, ins);
  s.set_par_trigger(-1);
  (void)s.solve(ins.assumptions);
  EXPECT_EQ(s.stats().par_escalations, 0u);
}

}  // namespace
}  // namespace eco::sat
