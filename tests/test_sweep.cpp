/// Tests for the SAT-sweeping equivalence engine (cec/sweep.hpp): a
/// randomized differential harness against the monolithic oracle, the
/// determinism contract across executor widths (the "Sweep" suite name also
/// routes these through the CI TSan job), the phase-seeding A/B, the
/// escalation wiring, and the divisor-dedupe helper.
#include <gtest/gtest.h>

#include <vector>

#include "aig/aig.hpp"
#include "aig/sim.hpp"
#include "cec/cec.hpp"
#include "cec/sweep.hpp"
#include "eco/support.hpp"
#include "sat/solver.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace eco::cec {
namespace {

using aig::Aig;
using aig::Lit;
using aig::lit_not;

/// One randomly generated miter: a pair of structurally different circuits
/// built from the same op tape (equivalent), optionally with one op flipped
/// in the second copy (usually inequivalent — the oracle decides).
struct RandomMiter {
  Aig g;
  Lit out = aig::kLitFalse;
};

/// Builds two circuits from one random op tape. Copy A elaborates each op
/// directly; copy B uses a different but equivalent decomposition per op —
/// one the strasher cannot collapse back onto copy A's nodes — so the two
/// sides carry genuinely distinct structure with many cross-copy equivalence
/// classes. With \p mutate, one op near the output is changed in copy B,
/// making the pair inequivalent unless the mutation is unobservable.
RandomMiter random_miter(Rng& rng, bool mutate) {
  const uint32_t num_pis = 3 + static_cast<uint32_t>(rng.below(6));
  const size_t num_ops = 5 + rng.below(36);
  struct Op {
    int kind;  // 0 and, 1 or, 2 xor, 3 mux
    size_t a, b, c;
    bool na, nb;
  };
  std::vector<Op> tape;
  for (size_t i = 0; i < num_ops; ++i) {
    const size_t pool = num_pis + i;
    tape.push_back({static_cast<int>(rng.below(4)), rng.below(pool), rng.below(pool),
                    rng.below(pool), rng.chance(3, 10), rng.chance(3, 10)});
  }
  // Mutate the final op: it is the one op guaranteed to be in the output
  // cone, so the mutation is almost always observable.
  const size_t mutated = mutate ? num_ops - 1 : num_ops;

  RandomMiter m;
  std::vector<Lit> va, vb;
  for (uint32_t i = 0; i < num_pis; ++i) {
    const Lit pi = m.g.add_pi();
    va.push_back(pi);
    vb.push_back(pi);
  }
  const auto emit = [](Aig& g, std::vector<Lit>& v, const Op& op, bool variant) {
    Lit a = op.na ? lit_not(v[op.a]) : v[op.a];
    Lit b = op.nb ? lit_not(v[op.b]) : v[op.b];
    const Lit e = v[op.c];
    switch (op.kind) {
      case 0:  // a & b  ==  (a | b) & (a xnor b)
        v.push_back(variant ? g.add_and(g.add_or(a, b), g.add_xnor(a, b))
                            : g.add_and(a, b));
        break;
      case 1:  // a | b  ==  a ^ (~a & b)
        v.push_back(variant ? g.add_xor(a, g.add_and(lit_not(a), b)) : g.add_or(a, b));
        break;
      case 2:  // a ^ b  ==  (a | b) & ~(a & b)
        v.push_back(variant ? g.add_and(g.add_or(a, b), g.add_nand(a, b))
                            : g.add_xor(a, b));
        break;
      default:  // mux(a, b, e)  ==  e ^ (a & (b ^ e))
        v.push_back(variant ? g.add_xor(e, g.add_and(a, g.add_xor(b, e)))
                            : g.add_mux(a, b, e));
        break;
    }
  };
  for (size_t i = 0; i < num_ops; ++i) {
    emit(m.g, va, tape[i], false);
    Op op = tape[i];
    if (i == mutated) {  // flip the op so copy B computes something else
      op.kind = (op.kind + 1) % 4;
      op.na = !op.na;
    }
    emit(m.g, vb, op, true);
  }
  m.out = m.g.add_xor(va.back(), vb.back());
  return m;
}

// ---------------------------------------------------------------------------
// Randomized differential: sweeping must agree with the monolithic oracle on
// every verdict, and every inequivalence counterexample must actually excite
// the miter root.
TEST(Sweep, DifferentialAgainstMonolithicOracle) {
  Rng rng(0xD1FFE2);
  int equivalent = 0, inequivalent = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    const RandomMiter m = random_miter(rng, iter % 2 == 1);
    const CecResult oracle = check_const0(m.g, m.out);
    ASSERT_NE(oracle.status, Status::kUnknown);
    const SweepResult swept = sweep_check(m.g, m.out);
    ASSERT_EQ(swept.cec.status, oracle.status) << "iter " << iter;
    if (swept.cec.status == Status::kNotEquivalent) {
      ++inequivalent;
      ASSERT_EQ(swept.cec.counterexample.size(), m.g.num_pis());
      std::vector<bool> pattern = swept.cec.counterexample;
      Aig probe = m.g;
      probe.add_po(m.out);
      EXPECT_TRUE(aig::eval(probe, pattern).back()) << "iter " << iter;
    } else {
      ++equivalent;
    }
  }
  // The generator must exercise both verdicts heavily.
  EXPECT_GT(equivalent, 200);
  EXPECT_GT(inequivalent, 200);
}

// The determinism contract: verdict, proven pairs, and stats are identical
// for any executor width, including serial.
TEST(Sweep, DeterministicAcrossExecutorWidths) {
  Rng rng(0xDE7E12);
  util::Executor pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    const RandomMiter m = random_miter(rng, iter % 2 == 1);
    const SweepResult serial = sweep_check(m.g, m.out);
    const SweepResult parallel =
        sweep_check(m.g, m.out, /*conflict_budget=*/-1, {}, {}, {}, &pool);
    ASSERT_EQ(parallel.cec.status, serial.cec.status) << "iter " << iter;
    ASSERT_EQ(parallel.proven.size(), serial.proven.size()) << "iter " << iter;
    for (size_t i = 0; i < serial.proven.size(); ++i) {
      EXPECT_EQ(parallel.proven[i].a, serial.proven[i].a);
      EXPECT_EQ(parallel.proven[i].b, serial.proven[i].b);
    }
    EXPECT_EQ(parallel.stats.proofs, serial.stats.proofs);
    EXPECT_EQ(parallel.stats.refutes, serial.stats.refutes);
    EXPECT_EQ(parallel.stats.merges, serial.stats.merges);
    EXPECT_EQ(parallel.stats.cex_splits, serial.stats.cex_splits);
    EXPECT_EQ(parallel.cec.counterexample, serial.cec.counterexample);
  }
}

// TSan hammer for the parallel class-proving path: many classes, wide pool.
// (The CI TSan job selects this by the "Sweep" suite name.)
TEST(Sweep, ParallelClassProvingHammer) {
  Rng rng(0x7Ea11);
  util::Executor pool(4);
  // Probing off: these miters are small enough that the round-0 root probe
  // would decide them before any class proving ran, and this test exists to
  // hammer the parallel class-proving path.
  SweepOptions opts = CecOptions::defaults().sweep;
  opts.probe_conflict_budget = 0;
  uint64_t total_merges = 0;
  for (int iter = 0; iter < 8; ++iter) {
    // Equivalent pair: every internal node of copy A has a twin in copy B,
    // so the class list is as wide as the circuit.
    const RandomMiter m = random_miter(rng, false);
    const SweepResult r =
        sweep_check(m.g, m.out, /*conflict_budget=*/-1, {}, {}, {}, &pool, opts);
    EXPECT_EQ(r.cec.status, Status::kEquivalent);
    total_merges += r.stats.merges;
  }
  // A miter that strashes to constant 0 short-circuits with empty stats, so
  // assert the sweeping work happened in aggregate.
  EXPECT_GT(total_merges, 0u);
}

// Phase seeding is a heuristic start assignment: verdicts must be identical
// with it on and off (the PR-3-style A/B differential).
TEST(Sweep, PhaseSeedOnOffSameVerdicts) {
  const sat::SolverOptions saved = sat::SolverOptions::defaults();
  Rng rng(0x9A5EED);
  for (int iter = 0; iter < 100; ++iter) {
    const RandomMiter m = random_miter(rng, iter % 2 == 1);
    sat::SolverOptions on = saved;
    on.phase_seed = true;
    sat::SolverOptions::set_defaults(on);
    const SweepResult with_seed = sweep_check(m.g, m.out);
    sat::SolverOptions off = saved;
    off.phase_seed = false;
    sat::SolverOptions::set_defaults(off);
    const SweepResult without = sweep_check(m.g, m.out);
    sat::SolverOptions::set_defaults(saved);
    ASSERT_EQ(with_seed.cec.status, without.cec.status) << "iter " << iter;
  }
  sat::SolverOptions::set_defaults(saved);
}

TEST(Sweep, SeedPatternScreensToCounterexample) {
  // Root = AND of 24 PIs: random bank patterns essentially never excite it
  // (512 * 2^-24), so the all-ones caller seed must decide the check.
  constexpr int kPis = 24;
  Aig g;
  std::vector<Lit> pis;
  for (int i = 0; i < kPis; ++i) pis.push_back(g.add_pi());
  Lit conj = aig::kLitTrue;
  for (const Lit pi : pis) conj = g.add_and(conj, pi);
  const std::vector<std::vector<bool>> seeds = {std::vector<bool>(kPis, true)};
  const SweepResult r = sweep_check(g, conj, /*conflict_budget=*/-1, {}, seeds);
  ASSERT_EQ(r.cec.status, Status::kNotEquivalent);
  ASSERT_EQ(r.cec.counterexample.size(), static_cast<size_t>(kPis));
  // Whatever pattern came out must genuinely excite the root.
  Aig probe = g;
  probe.add_po(conj);
  EXPECT_TRUE(aig::eval(probe, r.cec.counterexample).back());
}

TEST(Sweep, ConstantRootsShortCircuit) {
  Aig g;
  g.add_pi();
  EXPECT_EQ(sweep_check(g, aig::kLitFalse).cec.status, Status::kEquivalent);
  const SweepResult r = sweep_check(g, aig::kLitTrue);
  ASSERT_EQ(r.cec.status, Status::kNotEquivalent);
  EXPECT_EQ(r.cec.counterexample.size(), g.num_pis());
}

// sweep_discover: structurally distinct equivalent cones are found and
// reported as proven pairs over the input AIG.
TEST(Sweep, DiscoverFindsEquivalentCones) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit x1 = g.add_xor(a, b);                             // or-of-ands
  const Lit x2 = g.add_and(g.add_or(a, b), g.add_nand(a, b)); // and-of-or/nand
  const Lit roots[] = {x1, x2};
  const SweepResult r = sweep_discover(g, roots);
  ASSERT_FALSE(r.proven.empty());
  // Every reported pair must be a genuine equivalence: check by eval over
  // all 4 input patterns.
  Aig probe = g;
  for (const EquivPair& p : r.proven) {
    probe.add_po(p.a);
    probe.add_po(p.b);
  }
  for (int bits = 0; bits < 4; ++bits) {
    const std::vector<bool> pattern = {(bits & 1) != 0, (bits & 2) != 0};
    const auto values = aig::eval(probe, pattern);
    for (size_t i = 0; i < r.proven.size(); ++i)
      EXPECT_EQ(values[2 * i], values[2 * i + 1]) << "pattern " << bits;
  }
}

// check_equivalence escalates to sweeping past the node floor when the
// process-wide mode says so — same verdict either way.
TEST(Sweep, CheckEquivalenceEscalation) {
  const CecOptions saved = CecOptions::defaults();
  CecOptions sweeping = saved;
  sweeping.mode = CecMode::kSweep;
  sweeping.min_nodes = 1;
  CecOptions::set_defaults(sweeping);
  Rng rng(0xE5CA1A);
  for (int iter = 0; iter < 20; ++iter) {
    const RandomMiter m = random_miter(rng, iter % 2 == 1);
    // Split the shared miter into two single-output circuits over the same
    // PIs so check_equivalence builds the miter itself.
    Aig probe = m.g;
    probe.add_po(m.out, "diff");
    Aig zero;
    for (uint32_t i = 0; i < m.g.num_pis(); ++i) zero.add_pi();
    zero.add_po(aig::kLitFalse, "diff");
    const CecResult swept = check_equivalence(probe, zero);
    CecOptions::set_defaults(saved);
    const CecResult mono = check_equivalence(probe, zero);
    CecOptions::set_defaults(sweeping);
    ASSERT_EQ(swept.status, mono.status) << "iter " << iter;
  }
  CecOptions::set_defaults(saved);
}

TEST(Sweep, ParseCecMode) {
  CecMode mode = CecMode::kMono;
  EXPECT_TRUE(parse_cec_mode("sweep", mode));
  EXPECT_EQ(mode, CecMode::kSweep);
  EXPECT_TRUE(parse_cec_mode("mono", mode));
  EXPECT_EQ(mode, CecMode::kMono);
  EXPECT_FALSE(parse_cec_mode("bogus", mode));
  EXPECT_EQ(mode, CecMode::kMono);
}

// ---------------------------------------------------------------------------
// Divisor dedupe helper (eco/support.hpp): a candidate is dropped exactly
// when its alias representative is a distinct candidate.
TEST(SweepDedupe, DropsDuplicatesKeepsRepresentatives) {
  // alias: 0->0, 1->0, 2->2, 3->2, 4->4
  const std::vector<size_t> alias = {0, 0, 2, 2, 4};
  const std::vector<size_t> candidates = {0, 1, 2, 3, 4};
  const auto kept = eco::core::dedupe_equivalent_divisors(candidates, alias);
  EXPECT_EQ(kept, (std::vector<size_t>{0, 2, 4}));
}

TEST(SweepDedupe, KeepsMemberWhoseRepresentativeIsNotACandidate) {
  const std::vector<size_t> alias = {0, 0, 2};
  // 0 is not a candidate, so 1 must survive even though alias[1] == 0.
  const std::vector<size_t> candidates = {1, 2};
  const auto kept = eco::core::dedupe_equivalent_divisors(candidates, alias);
  EXPECT_EQ(kept, (std::vector<size_t>{1, 2}));
}

TEST(SweepDedupe, EmptyAliasIsIdentity) {
  const std::vector<size_t> candidates = {3, 1, 4};
  const auto kept = eco::core::dedupe_equivalent_divisors(candidates, {});
  EXPECT_EQ(kept, candidates);
}

}  // namespace
}  // namespace eco::cec
