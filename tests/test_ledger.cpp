// Tests for util/ledger: purpose scoping (strong/weak, innermost wins),
// append/collect ordering, ring-wrap drop accounting, lossless JSONL sink,
// solver chokepoint instrumentation — plus the two integration properties
// the observability PR promises: a parallel engine sweep produces the same
// record multiset as a serial one, and a chaos-injected engine error always
// carries a flight-recorder dump in the outcome.

#include "util/ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "benchgen/suite.hpp"
#include "eco/engine.hpp"
#include "eco/problem.hpp"
#include "sat/solver.hpp"
#include "util/executor.hpp"
#include "util/faultpoint.hpp"
#include "util/jsonr.hpp"

namespace led = eco::ledger;

namespace {

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    led::reset();
    led::set_enabled(true);
  }
  void TearDown() override {
    led::close_sink();
    led::set_enabled(false);
    led::set_ring_capacity(4096);
    led::reset();
    eco::fault::disarm_all();
  }
};

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

}  // namespace

TEST_F(LedgerTest, PurposeScopesNestInnermostWins) {
  EXPECT_EQ(led::current_purpose(), led::Purpose::kUnknown);
  {
    led::ScopedPurpose outer(led::Purpose::kVerify);
    EXPECT_EQ(led::current_purpose(), led::Purpose::kVerify);
    {
      led::ScopedPurpose inner(led::Purpose::kSupport);
      EXPECT_EQ(led::current_purpose(), led::Purpose::kSupport);
    }
    EXPECT_EQ(led::current_purpose(), led::Purpose::kVerify);
  }
  EXPECT_EQ(led::current_purpose(), led::Purpose::kUnknown);
}

TEST_F(LedgerTest, WeakScopeDoesNotShadowButAppliesWhenUnset) {
  {
    auto weak = led::ScopedPurpose::weak(led::Purpose::kCec);
    EXPECT_EQ(led::current_purpose(), led::Purpose::kCec);  // nothing was set
  }
  {
    led::ScopedPurpose strong(led::Purpose::kVerify);
    auto weak = led::ScopedPurpose::weak(led::Purpose::kCec);
    EXPECT_EQ(led::current_purpose(), led::Purpose::kVerify);  // not shadowed
  }
  EXPECT_EQ(led::current_purpose(), led::Purpose::kUnknown);
}

TEST_F(LedgerTest, AppendFillsSeqThreadAndScopedPurpose) {
  {
    led::ScopedPurpose scope(led::Purpose::kSatPrune);
    led::Record r;
    r.result = led::QueryResult::kUnsat;
    led::append(r);
  }
  led::append_sim_hit(led::Purpose::kSupport, led::QueryResult::kSat);
  const std::vector<led::Record> records = led::collect();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].purpose, led::Purpose::kSatPrune);
  EXPECT_EQ(records[0].result, led::QueryResult::kUnsat);
  EXPECT_GT(records[0].thread, 0u);
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_EQ(records[1].kind, led::Kind::kSimHit);
  EXPECT_EQ(records[1].purpose, led::Purpose::kSupport);
  EXPECT_NE(records[1].sim_hit, 0);
}

TEST_F(LedgerTest, DisabledAppendIsNoop) {
  led::set_enabled(false);
  led::append(led::Record{});
  led::append_sim_hit(led::Purpose::kCec, led::QueryResult::kSat);
  EXPECT_TRUE(led::collect().empty());
}

TEST_F(LedgerTest, RingWrapWithoutSinkCountsDropped) {
  led::set_ring_capacity(4);
  led::reset();  // shrink this thread's already-grown ring
  for (int i = 0; i < 10; ++i) led::append(led::Record{});
  EXPECT_EQ(led::dropped(), 6u);
  const std::vector<led::Record> records = led::collect();
  ASSERT_EQ(records.size(), 4u);  // the newest 4 survive, in order
  for (size_t i = 1; i < records.size(); ++i)
    EXPECT_LT(records[i - 1].seq, records[i].seq);
}

TEST_F(LedgerTest, TailReturnsNewestRecordsInOrder) {
  for (int i = 0; i < 8; ++i) led::append(led::Record{});
  const std::vector<led::Record> t = led::tail(3);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.back().seq, led::collect().back().seq);
  EXPECT_LT(t[0].seq, t[1].seq);
}

TEST_F(LedgerTest, SinkIsLosslessDespiteTinyRing) {
  const std::string path = temp_path("ledger_lossless.jsonl");
  led::set_ring_capacity(2);
  led::reset();
  ASSERT_TRUE(led::set_sink(path));
  constexpr int kRecords = 25;
  {
    led::ScopedPurpose scope(led::Purpose::kQbf);
    for (int i = 0; i < kRecords; ++i) {
      led::Record r;
      r.conflicts = static_cast<uint64_t>(i);
      led::append(r);
    }
  }
  EXPECT_TRUE(led::close_sink());
  EXPECT_EQ(led::dropped(), 0u);

  // Every record reached the file: header + kRecords lines, seq contiguous.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t end = content.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    lines.push_back(content.substr(pos, end - pos));
    pos = end + 1;
  }
  ASSERT_EQ(lines.size(), 1u + kRecords);

  std::string err;
  const auto header = eco::json_parse(lines[0], &err);
  ASSERT_TRUE(header.has_value()) << err;
  EXPECT_EQ((*header)["schema"].as_string(), "ecopatch-ledger-v1");
  EXPECT_TRUE(header->contains("git_commit"));
  for (int i = 0; i < kRecords; ++i) {
    const auto rec = eco::json_parse(lines[1 + static_cast<size_t>(i)], &err);
    ASSERT_TRUE(rec.has_value()) << err;
    EXPECT_EQ((*rec)["conflicts"].as_number(), i);
    EXPECT_EQ((*rec)["purpose"].as_string(), "qbf");
  }
}

TEST_F(LedgerTest, SetSinkFailsFastOnUnwritablePath) {
  EXPECT_FALSE(led::set_sink("/nonexistent-dir/ledger.jsonl"));
}

TEST_F(LedgerTest, SolverSolveAppendsOneTaggedRecord) {
  led::ScopedPurpose scope(led::Purpose::kIrredundancy);
  eco::sat::Solver solver;
  const eco::sat::Var a = solver.new_var();
  const eco::sat::Var b = solver.new_var();
  // All-binary UNSAT core: unit clauses would be absorbed into the level-0
  // trail and not counted as stored problem clauses.
  solver.add_clause({eco::sat::mk_lit(a), eco::sat::mk_lit(b)});
  solver.add_clause({~eco::sat::mk_lit(a), eco::sat::mk_lit(b)});
  solver.add_clause({eco::sat::mk_lit(a), ~eco::sat::mk_lit(b)});
  solver.add_clause({~eco::sat::mk_lit(a), ~eco::sat::mk_lit(b)});
  EXPECT_TRUE(solver.solve().is_false());
  const std::vector<led::Record> records = led::collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, led::Kind::kSolve);
  EXPECT_EQ(records[0].purpose, led::Purpose::kIrredundancy);
  EXPECT_EQ(records[0].result, led::QueryResult::kUnsat);
  EXPECT_EQ(records[0].vars, 2u);
  EXPECT_EQ(records[0].clauses, 4u);
  EXPECT_EQ(records[0].cancel, led::CancelCause::kNone);
}

TEST_F(LedgerTest, PurposeScopeIsPerThread) {
  led::ScopedPurpose scope(led::Purpose::kVerify);
  led::Purpose other = led::Purpose::kVerify;
  std::thread t([&] { other = led::current_purpose(); });
  t.join();
  EXPECT_EQ(other, led::Purpose::kUnknown);
}

// ---- engine integration --------------------------------------------------

namespace {

/// The schedule-independent fields of a record: everything except seq,
/// thread, times, and phase path (which legitimately vary across runs).
using StableTuple = std::tuple<led::Kind, led::Purpose, led::QueryResult, uint32_t, uint32_t,
                               uint64_t, uint64_t, uint64_t, uint8_t>;

StableTuple stable_tuple(const led::Record& r) {
  return {r.kind,      r.purpose,   r.result,       r.vars,   r.clauses,
          r.conflicts, r.decisions, r.propagations, r.sim_hit};
}

eco::core::EngineOptions sweep_options() {
  eco::core::EngineOptions options;
  options.time_budget = 60;  // far above what these tiny units need
  options.conflict_budget = 100000;
  return options;
}

/// Runs (unit, algorithm) pairs — serially or on \p executor — and returns
/// the multiset of stable record tuples the sweep appended.
std::multiset<StableTuple> sweep_tuples(eco::util::Executor* executor) {
  struct Task {
    int unit;
    eco::core::Algorithm algorithm;
  };
  const std::vector<Task> tasks = {
      {0, eco::core::Algorithm::kMinimize},
      {1, eco::core::Algorithm::kMinimize},
      {2, eco::core::Algorithm::kSatPruneCegarMin},
      {3, eco::core::Algorithm::kBaseline},
  };
  led::reset();
  const auto run_one = [&](size_t t) {
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(tasks[t].unit, 20170912);
    const eco::core::EcoProblem problem =
        eco::core::make_problem(unit.impl, unit.spec, unit.weights);
    eco::core::EngineOptions options = sweep_options();
    options.algorithm = tasks[t].algorithm;
    const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, options);
    EXPECT_EQ(outcome.status, eco::core::EcoOutcome::Status::kPatched);
  };
  if (executor != nullptr) {
    executor->parallel_for(tasks.size(), run_one);
  } else {
    for (size_t t = 0; t < tasks.size(); ++t) run_one(t);
  }
  std::multiset<StableTuple> tuples;
  for (const led::Record& r : led::collect()) tuples.insert(stable_tuple(r));
  return tuples;
}

}  // namespace

TEST_F(LedgerTest, ParallelSweepRecordsSameMultisetAsSerial) {
  // The 4 runs are independent and each single-threaded, so the schedule
  // must not change what was recorded — only seq/thread/timing interleave.
  const std::multiset<StableTuple> serial = sweep_tuples(nullptr);
  ASSERT_FALSE(serial.empty());
  eco::util::Executor executor(4);
  const std::multiset<StableTuple> parallel = sweep_tuples(&executor);
  EXPECT_EQ(serial.size(), parallel.size());
  EXPECT_TRUE(serial == parallel);
  EXPECT_EQ(led::dropped(), 0u);
}

TEST_F(LedgerTest, EngineErrorCarriesFlightRecorderDump) {
  // A deterministic injected fault ends the run kError; the outcome must
  // carry the last ledger records so the failure is diagnosable post mortem.
  const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(0, 20170912);
  const eco::core::EcoProblem problem =
      eco::core::make_problem(unit.impl, unit.spec, unit.weights);
  ASSERT_TRUE(eco::fault::arm("window.extract"));
  eco::core::EngineOptions options = sweep_options();
  options.ladder = false;
  const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, options);
  eco::fault::disarm_all();
  ASSERT_EQ(outcome.status, eco::core::EcoOutcome::Status::kError);
  EXPECT_FALSE(outcome.flight_recorder.empty());
  // The dump lands in the outcome JSON as a parseable array.
  std::string err;
  const auto doc = eco::json_parse(eco::core::outcome_to_json(outcome), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ((*doc)["schema"].as_string(), "ecopatch-outcome-v1");
  EXPECT_TRUE(doc->contains("git_commit"));
  EXPECT_GE((*doc)["flight_recorder"].as_array().size(), 1u);
}

TEST_F(LedgerTest, RecoveredFaultStillTriggersFlightRecorder) {
  // With the ladder on, the run recovers — but a fault fired, so the dump
  // is still captured (the interesting evidence is from the failed attempt).
  const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(0, 20170912);
  const eco::core::EcoProblem problem =
      eco::core::make_problem(unit.impl, unit.spec, unit.weights);
  ASSERT_TRUE(eco::fault::arm("window.extract:0.99:7"));
  eco::core::EngineOptions options = sweep_options();
  options.ladder = true;
  const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, options);
  eco::fault::disarm_all();
  EXPECT_FALSE(outcome.flight_recorder.empty());
}

TEST_F(LedgerTest, CleanRunWithLedgerOffLeavesOutcomeLean) {
  led::set_enabled(false);
  const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(0, 20170912);
  const eco::core::EcoProblem problem =
      eco::core::make_problem(unit.impl, unit.spec, unit.weights);
  const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, sweep_options());
  EXPECT_EQ(outcome.status, eco::core::EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.flight_recorder.empty());
  EXPECT_TRUE(led::collect().empty());
}
