// Tests of util/executor.hpp: the fixed thread pool behind the bench
// sweeps, the CEC simulation screen, and the engine's verify overlap. The
// contract under test (see the executor file comment): serial mode is an
// exact inline loop, parallel_for is deadlock-free under nesting because
// the caller participates, exceptions propagate, and wait_helping makes
// submit-then-wait safe from inside pool tasks.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/executor.hpp"

namespace eco::util {
namespace {

TEST(Jobs, HardwareJobsIsPositive) { EXPECT_GE(hardware_jobs(), 1); }

TEST(Jobs, DefaultJobsReadsEnvironment) {
  // setenv/getenv here is safe: tests in this binary run single-threaded.
  const char* saved = std::getenv("ECO_JOBS");
  const std::string saved_value = saved ? saved : "";

  unsetenv("ECO_JOBS");
  EXPECT_EQ(default_jobs(), 1);
  setenv("ECO_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3);
  setenv("ECO_JOBS", "0", 1);
  EXPECT_EQ(default_jobs(), hardware_jobs());
  setenv("ECO_JOBS", "garbage", 1);
  EXPECT_EQ(default_jobs(), 1);
  setenv("ECO_JOBS", "-2", 1);
  EXPECT_EQ(default_jobs(), 1);
  setenv("ECO_JOBS", "4x", 1);
  EXPECT_EQ(default_jobs(), 1);

  if (saved) setenv("ECO_JOBS", saved_value.c_str(), 1);
  else unsetenv("ECO_JOBS");
}

TEST(Executor, SerialModeMatchesPlainLoopExactly) {
  // jobs <= 1 must not spawn threads and must run indices in order on the
  // calling thread — byte-for-byte the serial program.
  Executor ex(1);
  EXPECT_EQ(ex.jobs(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  ex.parallel_for(17, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<size_t> expected(17);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);

  // submit runs inline too, before returning.
  bool ran = false;
  auto future = ex.submit([&] { ran = true; return 7; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(future.get(), 7);
}

TEST(Executor, ParallelForCoversEveryIndexOnce) {
  Executor ex(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Executor, ResultIndependentOfScheduling) {
  // Sum of f(i) over a fixed range must be identical for every job count.
  auto sweep = [](int jobs) {
    Executor ex(jobs);
    std::atomic<uint64_t> sum{0};
    ex.parallel_for(257, [&](size_t i) { sum.fetch_add(i * i + 1); });
    return sum.load();
  };
  const uint64_t serial = sweep(1);
  EXPECT_EQ(sweep(2), serial);
  EXPECT_EQ(sweep(3), serial);
  EXPECT_EQ(sweep(8), serial);
}

TEST(Executor, ExceptionPropagatesFromParallelFor) {
  for (const int jobs : {1, 4}) {
    Executor ex(jobs);
    std::atomic<int> completed{0};
    try {
      ex.parallel_for(100, [&](size_t i) {
        if (i == 13) throw std::runtime_error("boom at 13");
        completed.fetch_add(1);
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 13");
    }
    // Cancellation: after the throw, the remaining range is skipped.
    EXPECT_LT(completed.load(), 100);
  }
}

TEST(Executor, ExceptionPropagatesThroughSubmitFuture) {
  for (const int jobs : {1, 3}) {
    Executor ex(jobs);
    auto future = ex.submit([]() -> int { throw std::logic_error("task failed"); });
    EXPECT_THROW(future.get(), std::logic_error);
  }
}

TEST(Executor, NestedParallelForDoesNotDeadlock) {
  // Every outer iteration issues an inner parallel_for on the same pool.
  // With caller participation the inner loops finish even when all workers
  // are stuck in outer iterations; a regression here hangs the test (caught
  // by the ctest timeout) rather than failing an assertion.
  Executor ex(4);
  constexpr size_t kOuter = 16, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ex.parallel_for(kOuter, [&](size_t o) {
    ex.parallel_for(kInner, [&](size_t i) { hits[o * kInner + i].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(Executor, WaitHelpingRunsQueuedTasksFromInsidePoolTasks) {
  // Each parallel_for iteration submits a task and then blocks on it. With
  // plain future.get() this deadlocks once every thread is a blocked
  // waiter; wait_helping drains the queue instead.
  Executor ex(2);
  std::atomic<int> sum{0};
  ex.parallel_for(8, [&](size_t i) {
    auto future = ex.submit([i] { return static_cast<int>(i) + 1; });
    sum.fetch_add(ex.wait_helping(future));
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

TEST(Executor, ManySubmittedTasksAllComplete) {
  Executor ex(4);
  std::vector<std::future<size_t>> futures;
  futures.reserve(200);
  for (size_t i = 0; i < 200; ++i) futures.push_back(ex.submit([i] { return i; }));
  size_t sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 200u * 199u / 2u);
}

TEST(Executor, TryReserveGrantsUpToIdleSlots) {
  Executor ex(4);
  EXPECT_EQ(ex.busy(), 0);
  // Idle pool: a request within capacity is granted in full.
  EXPECT_EQ(ex.try_reserve(3), 3);
  EXPECT_EQ(ex.busy(), 3);
  // Only one slot left; an oversized request is clipped, never negative.
  EXPECT_EQ(ex.try_reserve(5), 1);
  EXPECT_EQ(ex.busy(), 4);
  EXPECT_EQ(ex.try_reserve(1), 0);
  ex.release(1);
  EXPECT_EQ(ex.busy(), 3);
  EXPECT_EQ(ex.try_reserve(2), 1);
  ex.release(4);
  EXPECT_EQ(ex.busy(), 0);
  // Degenerate requests are no-ops.
  EXPECT_EQ(ex.try_reserve(0), 0);
  EXPECT_EQ(ex.try_reserve(-3), 0);
}

TEST(Executor, TryReserveSeesParallelForOccupancy) {
  // From inside a saturated parallel_for every slot is accounted busy, so a
  // nested reservation — the racy par-sat admission check — is denied
  // rather than oversubscribing the machine.
  Executor ex(3);
  std::atomic<int> denied{0};
  std::atomic<int> peak_busy{0};
  ex.parallel_for(24, [&](size_t) {
    int b = ex.busy();
    int prev = peak_busy.load();
    while (b > prev && !peak_busy.compare_exchange_weak(prev, b)) {
    }
    if (ex.try_reserve(1) == 0) denied.fetch_add(1);
    else ex.release(1);
  });
  // At least one iteration ran while all slots (workers + caller) were busy.
  EXPECT_GE(peak_busy.load(), 1);
  EXPECT_LE(peak_busy.load(), 3);
  EXPECT_EQ(ex.busy(), 0);
  (void)denied;  // how many denials occur is schedule-dependent
}

TEST(Executor, SerialExecutorNeverGrantsReservations) {
  // jobs() == 1 has no spare capacity while the caller itself runs; the
  // parallel layer must degrade to pure serial solving.
  Executor ex(1);
  ex.parallel_for(4, [&](size_t) { EXPECT_EQ(ex.try_reserve(2), 0); });
  // Idle, the single slot is reservable.
  EXPECT_EQ(ex.try_reserve(2), 1);
  ex.release(1);
}

TEST(Executor, ZeroAndOneIterationEdges) {
  Executor ex(4);
  ex.parallel_for(0, [&](size_t) { FAIL() << "no iterations expected"; });
  int calls = 0;
  ex.parallel_for(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace eco::util
