#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/sim.hpp"
#include "cec/cec.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace eco::cec {
namespace {

using aig::Aig;
using aig::Lit;
using aig::lit_not;
using aig::lit_notif;

Aig xor_as_muxes() {
  // xor(a, b) built as a mux: a ? !b : b.
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  g.add_po(g.add_mux(a, lit_not(b), b), "f");
  return g;
}

Aig xor_direct() {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  g.add_po(g.add_xor(a, b), "f");
  return g;
}

TEST(Cec, EquivalentDifferentStructures) {
  const auto r = check_equivalence(xor_as_muxes(), xor_direct());
  EXPECT_EQ(r.status, Status::kEquivalent);
}

TEST(Cec, InequivalentWithCounterexample) {
  Aig a = xor_direct();
  Aig b;
  const Lit x = b.add_pi("a");
  const Lit y = b.add_pi("b");
  b.add_po(b.add_or(x, y), "f");  // differs from xor at (1,1)
  const auto r = check_equivalence(a, b);
  ASSERT_EQ(r.status, Status::kNotEquivalent);
  ASSERT_EQ(r.counterexample.size(), 2u);
  // The counterexample must actually distinguish the two circuits.
  EXPECT_NE(aig::eval(a, r.counterexample)[0], aig::eval(b, r.counterexample)[0]);
}

TEST(Cec, InterfaceMismatchThrows) {
  Aig a;
  a.add_pi();
  a.add_po(aig::kLitTrue);
  Aig b;
  b.add_pi();
  b.add_pi();
  b.add_po(aig::kLitTrue);
  EXPECT_THROW(build_miter(a, b), std::invalid_argument);
}

TEST(Cec, MultiOutputMismatchOnOnePoOnly) {
  Aig a;
  {
    const Lit x = a.add_pi();
    const Lit y = a.add_pi();
    a.add_po(a.add_and(x, y), "o0");
    a.add_po(a.add_or(x, y), "o1");
  }
  Aig b;
  {
    const Lit x = b.add_pi();
    const Lit y = b.add_pi();
    b.add_po(b.add_and(x, y), "o0");
    b.add_po(b.add_xor(x, y), "o1");  // differs at (1,1) on o1
  }
  const auto r = check_equivalence(a, b);
  ASSERT_EQ(r.status, Status::kNotEquivalent);
  EXPECT_TRUE(r.counterexample[0] && r.counterexample[1]);
}

TEST(Cec, ConstantZeroCone) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit f = g.add_and(a, lit_not(a));
  g.add_po(f);
  EXPECT_EQ(check_const0(g, f).status, Status::kEquivalent);
  EXPECT_EQ(check_const0(g, aig::kLitFalse).status, Status::kEquivalent);
  const auto r = check_const0(g, aig::kLitTrue);
  EXPECT_EQ(r.status, Status::kNotEquivalent);
}

TEST(Cec, ConstOneDetectedSat) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit f = g.add_or(a, lit_not(a));  // constant 1 (simplifies structurally)
  const auto r = check_const0(g, f);
  EXPECT_EQ(r.status, Status::kNotEquivalent);
}

TEST(Cec, TinyConflictBudgetMayReturnUnknownButNeverLies) {
  // With an extremely small budget the checker may give kUnknown, but if it
  // answers it must answer correctly (equivalent pair here).
  Aig a = xor_as_muxes();
  Aig b = xor_direct();
  const auto r = check_equivalence(a, b, /*conflict_budget=*/0, /*sim_rounds=*/0);
  EXPECT_NE(r.status, Status::kNotEquivalent);
}

// Property: applying a random functional mutation to a random circuit is
// detected as inequivalent (we construct mutations guaranteed to change the
// function), while a structural rebuild is detected as equivalent.
class CecRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CecRandomTest, DetectsFunctionChangesAndConfirmsRebuilds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 9);
  for (int iter = 0; iter < 6; ++iter) {
    Aig g;
    std::vector<Lit> pool;
    const int num_pis = 4 + static_cast<int>(rng.below(5));
    for (int i = 0; i < num_pis; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < 40; ++i) {
      const Lit x = pool[rng.below(pool.size())];
      const Lit y = pool[rng.below(pool.size())];
      pool.push_back(
          g.add_and(lit_notif(x, rng.chance(1, 2)), lit_notif(y, rng.chance(1, 2))));
    }
    const Lit root = pool.back();
    g.add_po(root, "f");

    // Equivalent variant: rebuilt through cleanup.
    EXPECT_EQ(check_equivalence(g, g.cleanup()).status, Status::kEquivalent);

    // Inequivalent variant: XOR the output with one PI conjunction that is
    // satisfiable, flipping at least one minterm.
    Aig h = g.cleanup();
    const Lit flip = h.add_and(h.pi_lit(0), h.pi_lit(1 % h.num_pis()));
    h.set_po(0, h.add_xor(h.po_lit(0), flip));
    const auto r = check_equivalence(g, h);
    ASSERT_EQ(r.status, Status::kNotEquivalent);
    EXPECT_NE(aig::eval(g, r.counterexample)[0], aig::eval(h, r.counterexample)[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CecRandomTest, ::testing::Range(0, 8));

// The simulation screen sweeps rounds over an executor when one is given;
// per-round seeds make the answer — including the counterexample pattern —
// identical to the serial sweep, whatever the thread schedule.
TEST(Cec, ParallelSimulationMatchesSerial) {
  Rng rng(77);
  for (int iter = 0; iter < 8; ++iter) {
    Aig g;
    std::vector<Lit> pool;
    const int num_pis = 5 + static_cast<int>(rng.below(4));
    for (int i = 0; i < num_pis; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < 50; ++i) {
      const Lit x = pool[rng.below(pool.size())];
      const Lit y = pool[rng.below(pool.size())];
      pool.push_back(
          g.add_and(lit_notif(x, rng.chance(1, 2)), lit_notif(y, rng.chance(1, 2))));
    }
    g.add_po(pool.back(), "f");
    Aig h = g.cleanup();
    const Lit flip = h.add_and(h.pi_lit(0), h.pi_lit(1));
    h.set_po(0, h.add_xor(h.po_lit(0), flip));

    util::Executor executor(4);
    for (const uint64_t rounds : {1ULL, 8ULL, 32ULL}) {
      const CecResult serial = check_equivalence(g, h, -1, rounds);
      const CecResult parallel = check_equivalence(g, h, -1, rounds, {}, &executor);
      ASSERT_EQ(parallel.status, serial.status) << "rounds " << rounds;
      EXPECT_EQ(parallel.counterexample, serial.counterexample) << "rounds " << rounds;
    }
    // Equivalent pair through the same parallel path.
    const CecResult eq = check_equivalence(g, g.cleanup(), -1, 8, {}, &executor);
    EXPECT_EQ(eq.status, Status::kEquivalent);
  }
}

}  // namespace
}  // namespace eco::cec
