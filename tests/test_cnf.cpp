#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/sim.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace eco::cnf {
namespace {

using aig::Aig;
using aig::Lit;
using aig::lit_not;
using aig::lit_notif;

TEST(Tseitin, SingleAndGate) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit f = g.add_and(a, b);
  sat::Solver s;
  Encoder enc(g, s);
  const sat::Lit out = enc.lit(f);
  s.add_unit(out);
  ASSERT_TRUE(s.solve().is_true());
  EXPECT_TRUE(s.model_value(enc.var(aig::lit_node(a))));
  EXPECT_TRUE(s.model_value(enc.var(aig::lit_node(b))));
}

TEST(Tseitin, ConstantNodeIsForcedFalse) {
  Aig g;
  sat::Solver s;
  Encoder enc(g, s);
  const sat::Lit const0 = enc.lit(aig::kLitFalse);
  EXPECT_TRUE(s.solve({const0}).is_false());
  EXPECT_TRUE(s.solve({~const0}).is_true());
}

TEST(Tseitin, ComplementedEdges) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit f = g.add_and(lit_not(a), b);  // f = !a & b
  sat::Solver s;
  Encoder enc(g, s);
  s.add_unit(enc.lit(f));
  ASSERT_TRUE(s.solve().is_true());
  EXPECT_FALSE(s.model_value(enc.var(aig::lit_node(a))));
  EXPECT_TRUE(s.model_value(enc.var(aig::lit_node(b))));
}

TEST(Tseitin, LazyLoadingOnlyEncodesCone) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit f = g.add_and(a, b);
  const Lit h = g.add_and(b, c);
  sat::Solver s;
  Encoder enc(g, s);
  enc.lit(f);
  EXPECT_TRUE(enc.encoded(aig::lit_node(f)));
  EXPECT_FALSE(enc.encoded(aig::lit_node(h)));
  EXPECT_FALSE(enc.encoded(aig::lit_node(c)));
  enc.lit(h);
  EXPECT_TRUE(enc.encoded(aig::lit_node(h)));
}

TEST(Tseitin, SharedNodesEncodedOnce) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, lit_not(a));
  sat::Solver s;
  Encoder enc(g, s);
  const sat::Var vx1 = enc.var(aig::lit_node(x));
  enc.lit(y);
  const sat::Var vx2 = enc.var(aig::lit_node(x));
  EXPECT_EQ(vx1, vx2);
}

TEST(Tseitin, DeepChainDoesNotOverflowStack) {
  Aig g;
  Lit acc = g.add_pi();
  const Lit b = g.add_pi();
  for (int i = 0; i < 200000; ++i) acc = g.add_xor(acc, b);
  sat::Solver s;
  Encoder enc(g, s);
  EXPECT_NO_THROW(enc.lit(acc));
}

// Property: for random AIGs, the CNF encoding agrees with simulation — any
// SAT model of "output asserted" evaluates the AIG output to 1, and the
// encoding is UNSAT exactly when the cone is constant 0.
class TseitinRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TseitinRandomTest, AgreesWithSimulation) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  for (int iter = 0; iter < 10; ++iter) {
    Aig g;
    std::vector<Lit> pool;
    const int num_pis = 3 + static_cast<int>(rng.below(6));
    for (int i = 0; i < num_pis; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < 30; ++i) {
      const Lit x = pool[rng.below(pool.size())];
      const Lit y = pool[rng.below(pool.size())];
      pool.push_back(
          g.add_and(lit_notif(x, rng.chance(1, 2)), lit_notif(y, rng.chance(1, 2))));
    }
    const Lit root = lit_notif(pool.back(), rng.chance(1, 2));
    g.add_po(root);
    const auto tt = aig::truth_table(g, root);
    bool const0 = true;
    for (const uint64_t w : tt) const0 = const0 && (w == 0);

    sat::Solver s;
    Encoder enc(g, s);
    s.add_unit(enc.lit(root));
    const sat::LBool verdict = s.solve();
    EXPECT_EQ(verdict.is_false(), const0);
    if (verdict.is_true()) {
      std::vector<bool> pattern(g.num_pis(), false);
      for (uint32_t i = 0; i < g.num_pis(); ++i)
        if (enc.encoded(g.pi_node(i)))
          pattern[i] = s.model_value(enc.var(g.pi_node(i)));
      EXPECT_TRUE(aig::eval(g, pattern)[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseitinRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace eco::cnf
