#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace eco {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit with overwhelming probability
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Timer, MeasuresForwardTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_TRUE(d.expired());
}

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
  set_log_level(before);
}

}  // namespace
}  // namespace eco
