#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aig/sim.hpp"
#include "aig/simbank.hpp"
#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "benchgen/weightgen.hpp"
#include "cec/cec.hpp"
#include "eco/engine.hpp"
#include "eco/miter.hpp"
#include "eco/simfilter.hpp"
#include "eco/support.hpp"
#include "net/verilog.hpp"
#include "util/rng.hpp"

namespace eco::core {
namespace {

/// Same reference instance as test_eco_core: y = t | c must become
/// y = (a & b) | c, with a redundant divisor `ab` = a & b available.
EcoProblem reference_problem() {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t, y, z);
      input a, b, c, t;
      output y, z;
      or  g1 (y, t, c);
      xor g2 (z, a, b);
      and g3 (ab, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y, z);
      input a, b, c;
      output y, z;
      and g1 (w, a, b);
      or  g2 (y, w, c);
      xor g3 (z, a, b);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 5}, {"b", 5}, {"c", 2}, {"ab", 1}, {"z", 7}, {"y", 9}};
  return make_problem(impl, spec, weights);
}

/// Reference check of a bank: every node row over every pattern must agree
/// with aig::eval of the pattern the bank reports for that column.
void expect_bank_matches_eval(aig::SimBank& bank) {
  const aig::Aig& g = bank.aig();
  for (uint32_t p = 0; p < bank.num_patterns(); ++p) {
    const std::vector<bool> pattern = bank.pattern(p);
    ASSERT_EQ(pattern.size(), g.num_pis());
    // Recompute all node values by direct single-pattern simulation.
    std::vector<uint64_t> pi_words(g.num_pis());
    for (uint32_t i = 0; i < g.num_pis(); ++i) pi_words[i] = pattern[i] ? ~0ULL : 0ULL;
    const std::vector<uint64_t> ref = aig::simulate(g, pi_words);
    for (aig::Node n = 0; n < g.num_nodes(); ++n) {
      const bool expect = (ref[n] & 1ULL) != 0;
      EXPECT_EQ(bank.value(aig::lit_make(n), p), expect)
          << "node " << n << " pattern " << p;
    }
  }
}

TEST(SimBank, SeedAndAppendedPatternsMatchReferenceSimulation) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  aig::SimBankOptions opt;
  opt.seed_words = 2;
  opt.capacity_words = 4;
  aig::SimBank bank(m.aig, opt);
  EXPECT_EQ(bank.num_patterns(), 2u * 64u);
  expect_bank_matches_eval(bank);

  // Append directed patterns one by one; values must stay exact (the last
  // word is partially filled, exercising the valid-mask path).
  Rng rng(7);
  for (int k = 0; k < 37; ++k) {
    std::vector<bool> pat(m.aig.num_pis());
    for (size_t i = 0; i < pat.size(); ++i) pat[i] = rng.below(2) != 0;
    ASSERT_TRUE(bank.add_pattern(pat));
  }
  EXPECT_EQ(bank.num_patterns(), 2u * 64u + 37u);
  expect_bank_matches_eval(bank);
}

TEST(SimBank, ExtendsOverAigGrowth) {
  const EcoProblem p = reference_problem();
  aig::Aig g = build_eco_miter(p.impl, p.spec, p.divisors).aig;
  aig::SimBankOptions opt;
  opt.seed_words = 1;
  opt.capacity_words = 2;
  aig::SimBank bank(g, opt);
  // Read a row (forces the initial sync), then grow the AIG and append a
  // pattern; rows of the new nodes must be simulated on the next query.
  bank.row(0);
  const aig::Lit x = g.pi_lit(0), y = g.pi_lit(1);
  const aig::Lit f = g.add_and(aig::lit_not(g.add_and(x, y)), g.add_and(x, aig::lit_not(y)));
  bank.add_pattern(std::vector<bool>(g.num_pis(), true));
  expect_bank_matches_eval(bank);
  // Spot-check the new node: f = ~(x&y) & (x&~y) == x & ~y & ~(x&y) == false
  // whenever x&y, i.e. f is x&~y&... evaluate directly.
  for (uint32_t p2 = 0; p2 < bank.num_patterns(); ++p2) {
    const std::vector<bool> pat = bank.pattern(p2);
    const bool expect = !(pat[0] && pat[1]) && (pat[0] && !pat[1]);
    EXPECT_EQ(bank.value(f, p2), expect);
  }
}

TEST(SimBank, CapacityCapRespected) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  aig::SimBankOptions opt;
  opt.seed_words = 1;
  opt.capacity_words = 1;
  aig::SimBank bank(m.aig, opt);
  EXPECT_TRUE(bank.full());
  EXPECT_FALSE(bank.add_pattern(std::vector<bool>(m.aig.num_pis(), false)));
  EXPECT_EQ(bank.num_patterns(), 64u);
}

/// Every harvested counterexample must evaluate the miter to the recorded
/// class: out = 1, and the target PI equal to the recorded on/off claim.
TEST(SimFilter, HarvestedCounterexamplesEvaluateMiterToRecordedClass) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  std::vector<size_t> all(p.divisors.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  SimFilterOptions fopt;
  fopt.seed_words = 1;
  SimFilter filter(m, /*target=*/0, fopt);
  SupportInstance inst(m, 0, p.divisors, all);
  inst.attach_sim_filter(&filter);

  // Insufficient subsets produce kTrue verdicts whose models are harvested.
  // {} and {c} cannot express the patch t = a & b.
  std::vector<size_t> c_only;
  for (size_t i = 0; i < p.divisors.size(); ++i)
    if (p.divisors[i].name == "c") c_only.push_back(i);
  ASSERT_EQ(c_only.size(), 1u);
  EXPECT_TRUE(inst.check_subset(std::span<const size_t>{}).is_true());
  EXPECT_TRUE(inst.check_subset(c_only).is_true());
  ASSERT_GT(filter.num_counterexamples(), 0u);

  // The miter's PO 0 is the mismatch output; its target PI is index
  // num_x + 0. An on-set point (recorded_off = false) witnesses
  // M(target=0, x) = 1, an off-set point M(target=1, x) = 1.
  for (uint32_t i = 0; i < filter.num_counterexamples(); ++i) {
    const std::vector<bool> pattern = filter.counterexample_pattern(i);
    ASSERT_EQ(pattern.size(), m.aig.num_pis());
    EXPECT_EQ(pattern[m.target_pi(0)], filter.recorded_off(i)) << "counterexample " << i;
    EXPECT_TRUE(aig::eval(m.aig, pattern)[0]) << "counterexample " << i
                                              << " does not excite the miter";
  }
}

/// refutes_subset must be exact: whenever it answers, the solver (without
/// filtering) must agree the subset is insufficient; and it must never
/// refute a subset the solver proves sufficient.
TEST(SimFilter, SubsetRefutationAgreesWithSolver) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  std::vector<size_t> all(p.divisors.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  SimFilterOptions fopt;
  fopt.seed_words = 2;
  SimFilter filter(m, 0, fopt);
  // Harvest a few counterexamples to sharpen the bank beyond the seeds.
  {
    SupportInstance grow(m, 0, p.divisors, all);
    grow.attach_sim_filter(&filter);
    grow.check_subset(std::span<const size_t>{});
  }

  Rng rng(11);
  int refuted = 0;
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<size_t> subset;
    for (size_t i = 0; i < all.size(); ++i)
      if (rng.below(2) != 0) subset.push_back(i);
    const bool sim_says_insufficient = filter.refutes_subset(subset);
    // Fresh instance: no filter involved in the verdict.
    SupportInstance check(m, 0, p.divisors, all);
    const sat::LBool verdict = check.check_subset(subset);
    ASSERT_FALSE(verdict.is_undef());
    if (sim_says_insufficient) {
      ++refuted;
      EXPECT_TRUE(verdict.is_true()) << "bank refuted a sufficient subset";
      // The separator must name at least one distinguishing divisor, all
      // from the candidate list.
      const std::vector<size_t> sep = filter.separator(all);
      EXPECT_FALSE(sep.empty());
      for (const size_t d : sep) EXPECT_LT(d, p.divisors.size());
    }
  }
  // The reference instance is tiny: with 128+ patterns the bank must have
  // answered at least one insufficient draw (e.g. the empty/near-empty ones).
  EXPECT_GT(refuted, 0);
}

TEST(ResubFilter, NeverRefutesATrueDependency) {
  // func = a ^ b over divisors {a, b} IS a function of its divisors; over
  // {a & b} it is not (00 vs 01 agree on ab = 0 but differ on the xor).
  aig::Aig g;
  const aig::Lit a = g.add_pi("a");
  const aig::Lit b = g.add_pi("b");
  const aig::Lit ab = g.add_and(a, b);
  const aig::Lit x = g.add_and(aig::lit_not(ab), aig::lit_not(g.add_and(aig::lit_not(a), aig::lit_not(b))));
  g.add_po(x, "x");

  std::vector<Divisor> divisors(3);
  divisors[0].lit = a;
  divisors[0].name = "a";
  divisors[1].lit = b;
  divisors[1].name = "b";
  divisors[2].lit = ab;
  divisors[2].name = "ab";

  SimFilterOptions fopt;
  fopt.seed_words = 4;  // 256 random draws over 2 PIs: all 4 minterms present
  ResubFilter filter(g, fopt);

  const std::vector<size_t> good = {0, 1};
  EXPECT_FALSE(filter.refutes_dependency(x, divisors, good));
  const std::vector<size_t> bad = {2};
  EXPECT_TRUE(filter.refutes_dependency(x, divisors, bad));
}

TEST(CecSeeds, SeedPatternDecidesWithoutSolver) {
  // g: out = a & ~b. The seed {1, 0} excites it; seeds are screened before
  // the random rounds, so the counterexample is exactly the seed.
  aig::Aig g;
  const aig::Lit a = g.add_pi("a");
  const aig::Lit b = g.add_pi("b");
  const aig::Lit out = g.add_and(a, aig::lit_not(b));
  g.add_po(out, "out");

  const std::vector<std::vector<bool>> seeds = {{false, false}, {true, false}};
  const cec::CecResult r = cec::check_const0(g, out, /*conflict_budget=*/-1, {}, seeds);
  ASSERT_EQ(r.status, cec::Status::kNotEquivalent);
  EXPECT_EQ(r.counterexample, (std::vector<bool>{true, false}));

  // Short seeds are completed with 0: {true} alone also hits a & ~b.
  const std::vector<std::vector<bool>> short_seed = {{true}};
  const cec::CecResult r2 = cec::check_const0(g, out, -1, {}, short_seed);
  ASSERT_EQ(r2.status, cec::Status::kNotEquivalent);
  EXPECT_EQ(r2.counterexample, (std::vector<bool>{true, false}));

  // Seeds that do not fire leave the verdict to the SAT path, which must
  // still find the function satisfiable.
  const std::vector<std::vector<bool>> misses = {{false, true}, {true, true}};
  const cec::CecResult r3 = cec::check_const0(g, out, -1, {}, misses);
  ASSERT_EQ(r3.status, cec::Status::kNotEquivalent);
  EXPECT_TRUE(aig::eval(g, r3.counterexample)[0]);

  // And on a constant-false root, seeds cannot produce a false positive.
  const aig::Lit never = g.add_and(a, aig::lit_not(a));
  const cec::CecResult r4 = cec::check_const0(g, never, -1, {}, seeds);
  EXPECT_EQ(r4.status, cec::Status::kEquivalent);
}

EngineOptions fast_options(Algorithm algorithm, bool sim_bank) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.conflict_budget = 200000;
  options.max_expansion_nodes = 500000;
  options.time_budget = 20;
  options.simfilter.enabled = sim_bank;
  return options;
}

/// Differential property over generated benchmark mutations: the simulation
/// bank must be invisible in every result field — identical outcome, cost,
/// gate count, and method with the bank on and off — while strictly avoiding
/// solver work whenever its counters fire.
class SimFilterDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SimFilterDifferentialTest, BankOnOffResultsAreIdentical) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ULL + 17);
  uint64_t bank_patterns = 0;
  uint64_t filter_hits = 0;
  int instances = 0;
  for (int iter = 0; iter < 4; ++iter) {
    const int num_targets = 1 + static_cast<int>(rng.below(3));
    const net::Network base = benchgen::make_random_logic(
        6 + static_cast<int>(rng.below(6)), 4 + static_cast<int>(rng.below(4)),
        40 + static_cast<int>(rng.below(80)), rng);
    benchgen::EcoInstance instance;
    try {
      instance = benchgen::make_eco_instance(base, num_targets, rng);
    } catch (const std::runtime_error&) {
      continue;  // not enough observable gates in this draw
    }
    const net::WeightMap weights = benchgen::make_weights(
        instance.impl, static_cast<benchgen::WeightType>(rng.below(8)), rng);
    const EcoProblem problem = make_problem(instance.impl, instance.spec, weights);
    ++instances;

    const Algorithm algorithm = static_cast<Algorithm>((GetParam() + iter) % 3);
    const EcoOutcome off = run_eco(problem, fast_options(algorithm, false));
    const EcoOutcome on = run_eco(problem, fast_options(algorithm, true));

    EXPECT_EQ(on.status, off.status) << "seed " << GetParam() << " iter " << iter;
    EXPECT_EQ(on.verified, off.verified) << "seed " << GetParam() << " iter " << iter;
    EXPECT_EQ(on.method, off.method) << "seed " << GetParam() << " iter " << iter;
    EXPECT_EQ(on.total_cost, off.total_cost) << "seed " << GetParam() << " iter " << iter;
    EXPECT_EQ(on.patch_gates, off.patch_gates) << "seed " << GetParam() << " iter " << iter;

    // The bank must be truly off when disabled...
    EXPECT_EQ(off.stats.sim_bank_patterns, 0u);
    EXPECT_EQ(off.stats.sim_refuted_support + off.stats.sim_filtered_resub +
                  off.stats.sim_irredundant_hits,
              0u);
    bank_patterns += on.stats.sim_bank_patterns;
    filter_hits += on.stats.sim_refuted_support + on.stats.sim_filtered_resub +
                   on.stats.sim_irredundant_hits;
    // ...and every answered query is a solve the off run had to make.
    if (on.stats.sim_refuted_support + on.stats.sim_irredundant_hits > 0) {
      EXPECT_LT(on.stats.sat_solves, off.stats.sat_solves)
          << "seed " << GetParam() << " iter " << iter;
    }
  }
  // Each parameter value sees several generated instances; the engine's SAT
  // path always records at least its enumeration models into the bank.
  if (instances > 0) {
    EXPECT_GT(bank_patterns + filter_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFilterDifferentialTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace eco::core
