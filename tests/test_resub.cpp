#include <gtest/gtest.h>

#include "aig/sim.hpp"
#include "eco/resub.hpp"
#include "net/verilog.hpp"
#include "sop/synth.hpp"
#include "util/rng.hpp"

namespace eco::core {
namespace {

/// Implementation whose internal signals make several functions of the PIs
/// re-expressible: n1 = a&b, n2 = a^c, n3 = !(b|c).
struct Fixture {
  aig::Aig impl;
  std::vector<Divisor> divisors;
  aig::Lit a, b, c;

  Fixture() {
    a = impl.add_pi("a");
    b = impl.add_pi("b");
    c = impl.add_pi("c");
    const aig::Lit n1 = impl.add_and(a, b);
    const aig::Lit n2 = impl.add_xor(a, c);
    const aig::Lit n3 = impl.add_nor(b, c);
    impl.add_po(n1, "n1");
    divisors = {
        {n1, "n1", 1}, {n2, "n2", 1}, {n3, "n3", 1},
        {a, "a", 10},  {b, "b", 10},  {c, "c", 10},
    };
  }
  std::vector<size_t> all_candidates() const { return {0, 1, 2, 3, 4, 5}; }
};

TEST(FunctionalResub, ReexpressesOverSingleDivisor) {
  Fixture f;
  // func = a & b == n1 exactly.
  const aig::Lit func = f.impl.add_and(f.a, f.b);
  const ResubResult r =
      functional_resub(f.impl, func, f.divisors, f.all_candidates());
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.support.size(), 1u);
  EXPECT_EQ(f.divisors[r.support[0]].name, "n1");
  EXPECT_EQ(r.cost, 1);
}

TEST(FunctionalResub, ComposesMultipleDivisors) {
  Fixture f;
  // func = (a&b) | (a^c) = n1 | n2: expressible with cost 2 over {n1, n2}
  // instead of cost 30 over the PIs.
  const aig::Lit func = f.impl.add_or(f.impl.add_and(f.a, f.b), f.impl.add_xor(f.a, f.c));
  const ResubResult r =
      functional_resub(f.impl, func, f.divisors, f.all_candidates());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.cost, 2);
  // The synthesized cover must equal func on every minterm.
  aig::Aig check = f.impl;
  std::vector<aig::Lit> var_lits;
  for (const size_t g : r.support) var_lits.push_back(f.divisors[g].lit);
  const aig::Lit rebuilt = sop::synthesize_cover(check, r.cover, var_lits);
  check.add_po(func, "orig");
  check.add_po(rebuilt, "rebuilt");
  const auto tts = aig::po_truth_tables(check);
  EXPECT_EQ(tts[tts.size() - 2], tts[tts.size() - 1]);
}

TEST(FunctionalResub, ComplementedDivisorUsable) {
  Fixture f;
  // func = b | c = !n3: one divisor, negated literal in the cover.
  const aig::Lit func = f.impl.add_or(f.b, f.c);
  const ResubResult r =
      functional_resub(f.impl, func, f.divisors, f.all_candidates());
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.support.size(), 1u);
  EXPECT_EQ(f.divisors[r.support[0]].name, "n3");
  ASSERT_EQ(r.cover.cubes.size(), 1u);
  EXPECT_TRUE(sop::lit_negated(r.cover.cubes[0].lits()[0]));
}

TEST(FunctionalResub, FailsWhenNotAFunctionOfCandidates) {
  Fixture f;
  // func = a alone; candidates = {n1, n3} cannot express it (e.g. b flips
  // n1 while a stays).
  const std::vector<size_t> candidates = {0, 2};
  const ResubResult r = functional_resub(f.impl, f.a, f.divisors, candidates);
  EXPECT_FALSE(r.ok);
}

TEST(FunctionalResub, ConstantFunctionNeedsNoSupport) {
  Fixture f;
  const ResubResult r0 =
      functional_resub(f.impl, aig::kLitFalse, f.divisors, f.all_candidates());
  ASSERT_TRUE(r0.ok);
  EXPECT_TRUE(r0.support.empty());
  EXPECT_TRUE(r0.cover.cubes.empty());
  const ResubResult r1 =
      functional_resub(f.impl, aig::kLitTrue, f.divisors, f.all_candidates());
  ASSERT_TRUE(r1.ok);
  EXPECT_TRUE(r1.support.empty());
  ASSERT_EQ(r1.cover.cubes.size(), 1u);
  EXPECT_TRUE(r1.cover.cubes[0].empty());
}

// Property: random functions over PIs are always re-expressible when the
// PIs themselves are candidates, and the rebuilt cover matches exactly.
class ResubRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ResubRandomTest, RebuiltCoverMatchesOriginalFunction) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7907 + 3);
  for (int iter = 0; iter < 6; ++iter) {
    aig::Aig impl;
    std::vector<aig::Lit> pis;
    const int n = 4 + static_cast<int>(rng.below(3));
    for (int i = 0; i < n; ++i) pis.push_back(impl.add_pi("p" + std::to_string(i)));
    std::vector<aig::Lit> pool = pis;
    for (int i = 0; i < 25; ++i) {
      const aig::Lit x = pool[rng.below(pool.size())];
      const aig::Lit y = pool[rng.below(pool.size())];
      pool.push_back(impl.add_and(aig::lit_notif(x, rng.chance(1, 2)),
                                  aig::lit_notif(y, rng.chance(1, 2))));
    }
    const aig::Lit func = pool.back();
    impl.add_po(func, "f");

    std::vector<Divisor> divisors;
    std::vector<size_t> candidates;
    // A few random internal divisors first (cheap), then the PIs.
    for (int d = 0; d < 3; ++d) {
      divisors.push_back({pool[pool.size() - 2 - static_cast<size_t>(d)],
                          "d" + std::to_string(d), 1});
      candidates.push_back(divisors.size() - 1);
    }
    for (int i = 0; i < n; ++i) {
      divisors.push_back({pis[static_cast<size_t>(i)], "p" + std::to_string(i), 5});
      candidates.push_back(divisors.size() - 1);
    }

    const ResubResult r = functional_resub(impl, func, divisors, candidates);
    ASSERT_TRUE(r.ok);
    aig::Aig check = impl;
    std::vector<aig::Lit> var_lits;
    for (const size_t g : r.support) var_lits.push_back(divisors[g].lit);
    const aig::Lit rebuilt = sop::synthesize_cover(check, r.cover, var_lits);
    check.add_po(rebuilt, "rebuilt");
    const auto tts = aig::po_truth_tables(check);
    EXPECT_EQ(tts[0], tts[tts.size() - 1]) << "seed " << GetParam() << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResubRandomTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace eco::core
