#include <gtest/gtest.h>

#include <unordered_set>

#include "aig/sim.hpp"
#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "benchgen/suite.hpp"
#include "benchgen/weightgen.hpp"
#include "net/elaborate.hpp"
#include "util/rng.hpp"

namespace eco::benchgen {
namespace {

TEST(Circuits, AdderComputesSums) {
  const net::Network net = make_adder(4);
  net.validate();
  const auto elab = net::elaborate(net);
  Rng rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    const uint32_t a = static_cast<uint32_t>(rng.below(16));
    const uint32_t b = static_cast<uint32_t>(rng.below(16));
    const bool cin = rng.chance(1, 2);
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back(((a >> i) & 1) != 0);
    for (int i = 0; i < 4; ++i) in.push_back(((b >> i) & 1) != 0);
    in.push_back(cin);
    const auto out = aig::eval(elab.aig, in);
    const uint32_t expected = a + b + cin;
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], ((expected >> i) & 1) != 0);
    EXPECT_EQ(out[4], ((expected >> 4) & 1) != 0);
  }
}

TEST(Circuits, MultiplierComputesProducts) {
  const net::Network net = make_multiplier(4);
  net.validate();
  const auto elab = net::elaborate(net);
  for (uint32_t a = 0; a < 16; ++a)
    for (uint32_t b = 0; b < 16; ++b) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) in.push_back(((a >> i) & 1) != 0);
      for (int i = 0; i < 4; ++i) in.push_back(((b >> i) & 1) != 0);
      const auto out = aig::eval(elab.aig, in);
      const uint32_t expected = a * b;
      for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[static_cast<size_t>(i)], ((expected >> i) & 1) != 0)
            << a << "*" << b << " bit " << i;
    }
}

TEST(Circuits, AluOpsCorrect) {
  const net::Network net = make_alu(4);
  net.validate();
  const auto elab = net::elaborate(net);
  Rng rng(2);
  for (int iter = 0; iter < 60; ++iter) {
    const uint32_t a = static_cast<uint32_t>(rng.below(16));
    const uint32_t b = static_cast<uint32_t>(rng.below(16));
    const int op = static_cast<int>(rng.below(4));
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back(((a >> i) & 1) != 0);
    for (int i = 0; i < 4; ++i) in.push_back(((b >> i) & 1) != 0);
    in.push_back((op & 1) != 0);  // op0
    in.push_back((op & 2) != 0);  // op1
    const auto out = aig::eval(elab.aig, in);
    uint32_t expected = 0;
    switch (op) {
      case 0: expected = a + b; break;
      case 1: expected = a & b; break;
      case 2: expected = a | b; break;
      case 3: expected = a ^ b; break;
    }
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(out[static_cast<size_t>(i)], ((expected >> i) & 1) != 0)
          << "op " << op << " bit " << i;
  }
}

TEST(Circuits, ComparatorSemantics) {
  const net::Network net = make_comparator(3, 2);
  net.validate();
  const auto elab = net::elaborate(net);
  Rng rng(3);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<uint32_t> x(2), y(2);
    std::vector<bool> in;
    // Input order: per lane, interleaved x_i, y_i.
    for (int l = 0; l < 2; ++l) {
      x[static_cast<size_t>(l)] = static_cast<uint32_t>(rng.below(8));
      y[static_cast<size_t>(l)] = static_cast<uint32_t>(rng.below(8));
      for (int i = 0; i < 3; ++i) {
        in.push_back(((x[static_cast<size_t>(l)] >> i) & 1) != 0);
        in.push_back(((y[static_cast<size_t>(l)] >> i) & 1) != 0);
      }
    }
    const auto out = aig::eval(elab.aig, in);
    for (int l = 0; l < 2; ++l) {
      EXPECT_EQ(out[static_cast<size_t>(2 * l)], x[static_cast<size_t>(l)] == y[static_cast<size_t>(l)]);
      EXPECT_EQ(out[static_cast<size_t>(2 * l + 1)], x[static_cast<size_t>(l)] > y[static_cast<size_t>(l)]);
    }
  }
}

TEST(Circuits, RandomLogicIsWellFormedAndDeterministic) {
  Rng rng1(7), rng2(7);
  const net::Network a = make_random_logic(10, 5, 100, rng1);
  const net::Network b = make_random_logic(10, 5, 100, rng2);
  a.validate();
  EXPECT_EQ(a.num_gates(), b.num_gates());
  for (size_t i = 0; i < a.gates.size(); ++i) {
    EXPECT_EQ(a.gates[i].type, b.gates[i].type);
    EXPECT_EQ(a.gates[i].inputs, b.gates[i].inputs);
  }
  net::elaborate(a);  // must not throw (acyclic, driven)
}

TEST(Circuits, ParityMasksWellFormed) {
  Rng rng(9);
  const net::Network net = make_parity_masks(16, 8, rng);
  net.validate();
  const auto elab = net::elaborate(net);
  EXPECT_EQ(elab.aig.num_pos(), 8u);
}

TEST(Mutate, InstanceIsFeasibleByConstruction) {
  Rng rng(11);
  const net::Network base = make_adder(4);
  const EcoInstance inst = make_eco_instance(base, 2, rng);
  inst.impl.validate();
  inst.spec.validate();
  EXPECT_EQ(inst.target_names.size(), 2u);
  // Target signals are inputs of impl but not of spec.
  for (const auto& t : inst.target_names) {
    EXPECT_NE(std::find(inst.impl.inputs.begin(), inst.impl.inputs.end(), t),
              inst.impl.inputs.end());
    EXPECT_EQ(std::find(inst.spec.inputs.begin(), inst.spec.inputs.end(), t),
              inst.spec.inputs.end());
  }
  // Same PI/PO interface otherwise.
  EXPECT_EQ(inst.impl.inputs.size(), base.inputs.size() + 2);
  EXPECT_EQ(inst.spec.outputs.size(), base.outputs.size());
}

TEST(Mutate, SpecInternalNamesAreRenamed) {
  Rng rng(13);
  const net::Network base = make_adder(3);
  const EcoInstance inst = make_eco_instance(base, 1, rng);
  std::unordered_set<std::string> io(inst.spec.inputs.begin(), inst.spec.inputs.end());
  io.insert(inst.spec.outputs.begin(), inst.spec.outputs.end());
  for (const auto& g : inst.spec.gates)
    if (!io.count(g.output))
      EXPECT_EQ(g.output.rfind("sp_", 0), 0u) << "unrenamed internal: " << g.output;
}

TEST(Mutate, ThrowsWhenTooManyTargets) {
  Rng rng(15);
  net::Network base;
  base.name = "tiny";
  base.inputs = {"a"};
  base.outputs = {"y"};
  base.gates.push_back({net::GateType::kNot, "y", {"a"}, ""});
  EXPECT_THROW(make_eco_instance(base, 5, rng), std::runtime_error);
}

TEST(Weights, CoverAllSignalsAndAreNonNegative) {
  Rng rng(17);
  const net::Network base = make_alu(4);
  const EcoInstance inst = make_eco_instance(base, 1, rng);
  for (int wt = 0; wt < 8; ++wt) {
    Rng wrng(static_cast<uint64_t>(100 + wt));
    const net::WeightMap wm = make_weights(inst.impl, static_cast<WeightType>(wt), wrng);
    for (const auto& s : inst.impl.all_signals()) {
      ASSERT_TRUE(wm.weights.count(s)) << "missing weight for " << s;
      EXPECT_GE(wm.weights.at(s), 0);
    }
  }
}

TEST(Weights, T1AndT2HaveOppositeDepthCorrelation) {
  Rng rng(19);
  const net::Network base = make_multiplier(6);
  Rng r1(23), r2(23);
  const net::WeightMap w1 = make_weights(base, WeightType::kT1, r1);
  const net::WeightMap w2 = make_weights(base, WeightType::kT2, r2);
  // Use gate list order as a proxy: earlier gates are shallower in these
  // generators. Compute means over the first and last quartile.
  const size_t n = base.gates.size();
  auto mean = [&](const net::WeightMap& wm, size_t lo, size_t hi) {
    double total = 0;
    for (size_t i = lo; i < hi; ++i) total += static_cast<double>(wm.weight_of(base.gates[i].output));
    return total / static_cast<double>(hi - lo);
  };
  const double shallow1 = mean(w1, 0, n / 4), deep1 = mean(w1, 3 * n / 4, n);
  const double shallow2 = mean(w2, 0, n / 4), deep2 = mean(w2, 3 * n / 4, n);
  EXPECT_GT(shallow1, deep1);
  EXPECT_GT(deep2, shallow2);
}

TEST(Suite, AllUnitsWellFormedAndDeterministic) {
  for (int i = 0; i < kNumUnits; ++i) {
    const EcoUnit unit = make_unit(i);
    unit.impl.validate();
    unit.spec.validate();
    EXPECT_EQ(unit.name, "unit" + std::to_string(i + 1));
    EXPECT_GE(unit.num_targets, 1);
    const EcoUnit again = make_unit(i);
    EXPECT_EQ(unit.impl.num_gates(), again.impl.num_gates());
    EXPECT_EQ(unit.spec.num_gates(), again.spec.num_gates());
  }
}

TEST(Suite, SizesSpanTheContestRange) {
  size_t smallest = SIZE_MAX, largest = 0;
  int max_targets = 0;
  for (int i = 0; i < kNumUnits; ++i) {
    const EcoUnit unit = make_unit(i);
    smallest = std::min(smallest, unit.impl.num_gates());
    largest = std::max(largest, unit.impl.num_gates());
    max_targets = std::max(max_targets, unit.num_targets);
  }
  EXPECT_LT(smallest, 50u);
  EXPECT_GT(largest, 4000u);
  EXPECT_EQ(max_targets, 12);
}

TEST(Suite, RejectsOutOfRangeIndex) {
  EXPECT_THROW(make_unit(-1), std::out_of_range);
  EXPECT_THROW(make_unit(kNumUnits), std::out_of_range);
}

}  // namespace
}  // namespace eco::benchgen
