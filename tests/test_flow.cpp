#include <gtest/gtest.h>

#include <numeric>

#include "flow/maxflow.hpp"
#include "util/rng.hpp"

namespace eco::flow {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow mf(2);
  const int e = mf.add_edge(0, 1, 5);
  EXPECT_EQ(mf.run(0, 1), 5);
  EXPECT_EQ(mf.flow_on(e), 5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 7);
  mf.add_edge(1, 2, 3);
  EXPECT_EQ(mf.run(0, 2), 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 4);
  mf.add_edge(1, 3, 4);
  mf.add_edge(0, 2, 6);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.run(0, 3), 9);
}

TEST(MaxFlow, ClassicCLRSExample) {
  // CLRS figure 26.6 network; max flow 23.
  MaxFlow mf(6);
  mf.add_edge(0, 1, 16);
  mf.add_edge(0, 2, 13);
  mf.add_edge(1, 2, 10);
  mf.add_edge(2, 1, 4);
  mf.add_edge(1, 3, 12);
  mf.add_edge(3, 2, 9);
  mf.add_edge(2, 4, 14);
  mf.add_edge(4, 3, 7);
  mf.add_edge(3, 5, 20);
  mf.add_edge(4, 5, 4);
  EXPECT_EQ(mf.run(0, 5), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 10);
  mf.add_edge(2, 3, 10);
  EXPECT_EQ(mf.run(0, 3), 0);
}

TEST(MaxFlow, MinCutSeparatesSourceFromSink) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 2);
  mf.add_edge(0, 2, 2);
  mf.add_edge(1, 3, 1);
  mf.add_edge(2, 3, 1);
  EXPECT_EQ(mf.run(0, 3), 2);
  const auto side = mf.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, CutValueEqualsCrossingCapacity) {
  Rng rng(3);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 6 + static_cast<int>(rng.below(6));
    MaxFlow mf(n);
    struct E {
      int from, to;
      Capacity cap;
    };
    std::vector<E> edge_list;
    for (int i = 0; i < 3 * n; ++i) {
      const int from = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      const int to = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      if (from == to) continue;
      const Capacity cap = static_cast<Capacity>(1 + rng.below(9));
      mf.add_edge(from, to, cap);
      edge_list.push_back({from, to, cap});
    }
    const Capacity flow = mf.run(0, n - 1);
    const auto side = mf.min_cut_source_side();
    Capacity crossing = 0;
    for (const auto& e : edge_list)
      if (side[static_cast<size_t>(e.from)] && !side[static_cast<size_t>(e.to)])
        crossing += e.cap;
    EXPECT_EQ(flow, crossing) << "max-flow must equal min-cut";
  }
}

TEST(NodeCut, PicksCheapestNode) {
  // Chain s -> a -> b -> t with cap(a)=5, cap(b)=2: cut must be {b}.
  NodeCutGraph g(4);
  g.mark_source(0);
  g.mark_sink(3);
  g.set_node_capacity(0, kInfinite);
  g.set_node_capacity(1, 5);
  g.set_node_capacity(2, 2);
  g.set_node_capacity(3, kInfinite);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto result = g.solve();
  EXPECT_EQ(result.cut_value, 2);
  EXPECT_EQ(result.cut_nodes, (std::vector<int>{2}));
}

TEST(NodeCut, DiamondNeedsBothBranchesOrTheJoint) {
  //    s -> a -> t
  //    s -> b -> t     cap(a)=3, cap(b)=4 -> cut {a, b} value 7... unless
  // a cheaper joint j exists: s->a->j->t, s->b->j->t with cap(j)=5 -> cut {j}.
  NodeCutGraph g(5);
  g.mark_source(0);
  g.mark_sink(4);
  g.set_node_capacity(1, 3);
  g.set_node_capacity(2, 4);
  g.set_node_capacity(3, 5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto result = g.solve();
  EXPECT_EQ(result.cut_value, 5);
  EXPECT_EQ(result.cut_nodes, (std::vector<int>{3}));
}

TEST(NodeCut, InfiniteWhenNoCuttableNode) {
  NodeCutGraph g(3);
  g.mark_source(0);
  g.mark_sink(2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // All nodes default to infinite capacity.
  const auto result = g.solve();
  EXPECT_EQ(result.cut_value, kInfinite);
  EXPECT_TRUE(result.cut_nodes.empty());
}

TEST(NodeCut, CutActuallySeparates) {
  Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 8;
    NodeCutGraph g(n);
    std::vector<std::pair<int, int>> edges;
    // Layered random DAG 0 -> ... -> n-1.
    for (int v = 0; v + 1 < n; ++v) {
      edges.emplace_back(v, v + 1);
      if (rng.chance(1, 2) && v + 2 < n) edges.emplace_back(v, v + 2);
    }
    for (const auto& [a, b] : edges) g.add_edge(a, b);
    g.mark_source(0);
    g.mark_sink(n - 1);
    std::vector<Capacity> caps(n, kInfinite);
    for (int v = 1; v + 1 < n; ++v) {
      caps[static_cast<size_t>(v)] = static_cast<Capacity>(1 + rng.below(9));
      g.set_node_capacity(v, caps[static_cast<size_t>(v)]);
    }
    const auto result = g.solve();
    ASSERT_LT(result.cut_value, kInfinite);
    // Removing the cut nodes must disconnect 0 from n-1.
    std::vector<uint8_t> removed(static_cast<size_t>(n), 0);
    Capacity cut_weight = 0;
    for (const int v : result.cut_nodes) {
      removed[static_cast<size_t>(v)] = 1;
      cut_weight += caps[static_cast<size_t>(v)];
    }
    EXPECT_EQ(cut_weight, result.cut_value);
    std::vector<uint8_t> reach(static_cast<size_t>(n), 0);
    reach[0] = 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [a, b] : edges)
        if (reach[static_cast<size_t>(a)] && !removed[static_cast<size_t>(b)] &&
            !reach[static_cast<size_t>(b)]) {
          reach[static_cast<size_t>(b)] = 1;
          changed = true;
        }
    }
    EXPECT_FALSE(reach[static_cast<size_t>(n - 1)]) << "cut does not separate";
  }
}

}  // namespace
}  // namespace eco::flow
