#include <gtest/gtest.h>

#include "aig/sim.hpp"
#include "eco/cegarmin.hpp"
#include "eco/miter.hpp"
#include "eco/structural.hpp"
#include "eco/window.hpp"
#include "net/verilog.hpp"

namespace eco::core {
namespace {

/// Implementation with a rich set of internal signals equivalent to parts of
/// a PI-based patch: old y = t | d, new y = ((a&b) ^ c) | d. The impl keeps
/// `ab = a & b` and `abx = ab ^ c`, so the patch cone over {a,b,c} can be
/// cut at `abx` (cost 1) instead of using three expensive PIs.
EcoProblem rich_problem() {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, d, t, y);
      input a, b, c, d, t;
      output y;
      or  g1 (y, t, d);
      and g2 (ab, a, b);
      xor g3 (abx, ab, c);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, d, y);
      input a, b, c, d;
      output y;
      and g1 (w1, a, b);
      xor g2 (w2, w1, c);
      or  g3 (y, w2, d);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 20}, {"b", 20}, {"c", 20}, {"d", 20}, {"ab", 5}, {"abx", 1}};
  return make_problem(impl, spec, weights);
}

TEST(CegarMin, FindsCheapEquivalentCut) {
  const EcoProblem p = rich_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const StructuralPatches sp = structural_patch_single(m, 0);
  ASSERT_TRUE(sp.ok);
  // The PI-based patch is !d & ((a&b)^c): over PIs it costs 80 (a,b,c,d).
  const auto rewrites = cegar_min(p, sp.patch);
  ASSERT_EQ(rewrites.size(), 1u);
  ASSERT_TRUE(rewrites[0].used_cut);
  // The min cut replaces the (a&b)^c cone by `abx` (cost 1) and keeps the
  // PI d (cost 20): total 21, far below the 80 of the full PI support.
  EXPECT_EQ(rewrites[0].cut_cost, 21);
  ASSERT_EQ(rewrites[0].node_assignment.size(), 2u);
  std::vector<std::string> names;
  for (const auto& [node, assignment] : rewrites[0].node_assignment)
    names.push_back(p.divisors[assignment.first].name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"abx", "d"}));
}

TEST(CegarMin, RebuiltPatchIsFunctionallyCorrect) {
  const EcoProblem p = rich_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const StructuralPatches sp = structural_patch_single(m, 0);
  const auto rewrites = cegar_min(p, sp.patch);
  ASSERT_TRUE(rewrites[0].used_cut);

  aig::Aig work = p.impl;
  const aig::Lit patch = rebuild_patch_on_cut(work, p.divisors, sp.patch, 0, rewrites[0]);
  work.add_po(patch, "patch");
  // Patch must equal (a&b)^c on the care set d=0 (d=1 is don't care since
  // y = t | d is 1 regardless of t).
  for (uint32_t mm = 0; mm < 16; ++mm) {
    const bool a = mm & 1, b = mm & 2, c = mm & 4, d = mm & 8;
    const std::vector<bool> in = {a, b, c, d, false};
    const bool value = aig::eval(work, in).back();
    if (!d) EXPECT_EQ(value, (a && b) != c) << "minterm " << mm;
  }
}

TEST(CegarMin, ComplementEquivalenceUsed) {
  // The impl only keeps the COMPLEMENT of the needed function; the cut must
  // still find it, using the divisor complemented.
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, t, y);
      input a, b, t;
      output y;
      buf g1 (y, t);
      nand g2 (nab, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, y);
      input a, b;
      output y;
      and g1 (y, a, b);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 30}, {"b", 30}, {"nab", 1}};
  const EcoProblem p = make_problem(impl, spec, weights);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const StructuralPatches sp = structural_patch_single(m, 0);
  const auto rewrites = cegar_min(p, sp.patch);
  ASSERT_TRUE(rewrites[0].used_cut);
  EXPECT_EQ(rewrites[0].cut_cost, 1);
  const auto& [node, assignment] = rewrites[0].node_assignment[0];
  EXPECT_EQ(p.divisors[assignment.first].name, "nab");
  EXPECT_TRUE(assignment.second) << "divisor must be used complemented";

  aig::Aig work = p.impl;
  const aig::Lit patch = rebuild_patch_on_cut(work, p.divisors, sp.patch, 0, rewrites[0]);
  work.add_po(patch, "patch");
  for (uint32_t mm = 0; mm < 4; ++mm) {
    const bool a = mm & 1, b = mm & 2;
    EXPECT_EQ(aig::eval(work, {a, b, false}).back(), a && b);
  }
}

TEST(CegarMin, NoCutWhenNothingEquivalent) {
  // No internal logic: the patch cone PIs are the only candidates; they are
  // divisors themselves, so the "cut" is the PI set at PI cost — CEGAR_min
  // may keep or cut at PIs but cannot do better than their summed cost.
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, t, y);
      input a, b, t;
      output y;
      or g1 (y, t, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, y);
      input a, b;
      output y;
      or g1 (w, a, b);
      buf g2 (y, w);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 3}, {"b", 4}};
  const EcoProblem p = make_problem(impl, spec, weights);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const StructuralPatches sp = structural_patch_single(m, 0);
  const auto rewrites = cegar_min(p, sp.patch);
  ASSERT_EQ(rewrites.size(), 1u);
  if (rewrites[0].used_cut) {
    EXPECT_GE(rewrites[0].cut_cost, 1);
    EXPECT_LE(rewrites[0].cut_cost, 7);
  }
}

TEST(CegarMin, ConstantPatchHasEmptySupport) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (c, t, y);
      input c, t;
      output y;
      or (y, t, c);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (c, y);
      input c;
      output y;
      buf (y, c);
    endmodule
  )");
  const EcoProblem p = make_problem(impl, spec, net::WeightMap{});
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const StructuralPatches sp = structural_patch_single(m, 0);
  // Patch = M(0, x) = 0 here (impl with t=0 equals spec), i.e. constant.
  const auto rewrites = cegar_min(p, sp.patch);
  ASSERT_TRUE(rewrites[0].used_cut);
  EXPECT_EQ(rewrites[0].cut_cost, 0);
  EXPECT_TRUE(rewrites[0].node_assignment.empty());
}

TEST(MiterOps, SubstituteTargetInMiter) {
  const EcoProblem p = rich_problem();
  EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  // Substitute the correct patch function (abx divisor) for the target:
  // the miter must become constant-0 (no mismatch left).
  aig::Lit abx = aig::kLitInvalid;
  for (size_t i = 0; i < p.divisors.size(); ++i)
    if (p.divisors[i].name == "abx") abx = m.divisor_lits[i];
  ASSERT_NE(abx, aig::kLitInvalid);
  const EcoMiter fixed = substitute_target_in_miter(m, 0, abx);
  for (uint32_t mm = 0; mm < 32; ++mm) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back(((mm >> i) & 1) != 0);
    EXPECT_FALSE(aig::eval(fixed.aig, in)[0]) << "mismatch left at " << mm;
  }
}

}  // namespace
}  // namespace eco::core
