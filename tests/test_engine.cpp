#include <gtest/gtest.h>

#include <vector>

#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "benchgen/weightgen.hpp"
#include "cec/cec.hpp"
#include "eco/engine.hpp"
#include "net/verilog.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace eco::core {
namespace {

EngineOptions fast_options(Algorithm algorithm) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.conflict_budget = 200000;
  options.max_expansion_nodes = 500000;
  options.time_budget = 20;  // bounds every phase, including verification
  return options;
}

/// Checks the reported patch module against the patched implementation: the
/// patched implementation must be equivalent to the spec (the engine already
/// claims `verified`; re-check independently here).
void expect_outcome_consistent(const EcoProblem& problem, const EcoOutcome& outcome) {
  ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);
  ASSERT_EQ(outcome.targets.size(), problem.num_targets());
  // Patch module interface: one PO per target; PIs named after divisors.
  EXPECT_EQ(outcome.patch_module.num_pos(), problem.num_targets());
  // Reported cost equals the union of reported supports.
  std::vector<std::string> all;
  for (const auto& t : outcome.targets)
    all.insert(all.end(), t.support.begin(), t.support.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  int64_t cost = 0;
  for (const auto& name : all) {
    bool found = false;
    for (const auto& d : problem.divisors)
      if (d.name == name) {
        cost += d.cost;
        found = true;
        break;
      }
    EXPECT_TRUE(found) << "support name not a divisor: " << name;
  }
  EXPECT_EQ(cost, outcome.total_cost);
}

TEST(Engine, ReferenceSingleTargetAllAlgorithms) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t, y, z);
      input a, b, c, t;
      output y, z;
      or  g1 (y, t, c);
      xor g2 (z, a, b);
      and g3 (ab, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y, z);
      input a, b, c;
      output y, z;
      and g1 (w, a, b);
      or  g2 (y, w, c);
      xor g3 (z, a, b);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 5}, {"b", 5}, {"c", 2}, {"ab", 1}, {"z", 7}, {"y", 9}};
  const EcoProblem problem = make_problem(impl, spec, weights);

  for (const Algorithm algorithm :
       {Algorithm::kBaseline, Algorithm::kMinimize, Algorithm::kSatPruneCegarMin}) {
    const EcoOutcome outcome = run_eco(problem, fast_options(algorithm));
    expect_outcome_consistent(problem, outcome);
    if (algorithm != Algorithm::kBaseline) {
      // Cost-aware configs must find the 1-cost patch t = ab.
      EXPECT_EQ(outcome.total_cost, 1) << "algorithm " << static_cast<int>(algorithm);
      EXPECT_EQ(outcome.targets[0].sop, "ab");
    }
  }
}

TEST(Engine, InfeasibleOutsideTargetCone) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, t, y, z);
      input a, b, t;
      output y, z;
      or  (y, t, a);
      and (z, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, y, z);
      input a, b;
      output y, z;
      or  (y, a, b);
      nand (z, a, b);
    endmodule
  )");
  const EcoOutcome outcome = run_eco(impl, spec, net::WeightMap{}, fast_options(Algorithm::kMinimize));
  EXPECT_EQ(outcome.status, EcoOutcome::Status::kInfeasible);
}

TEST(Engine, InfeasibleInsideTargetConeViaQbf) {
  // y = t & a cannot implement y = a | b: at a=0,b=1 the spec wants 1 but
  // t & 0 = 0 for every t.
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, t, y);
      input a, b, t;
      output y;
      and (y, t, a);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, y);
      input a, b;
      output y;
      or (y, a, b);
    endmodule
  )");
  const EcoOutcome outcome = run_eco(impl, spec, net::WeightMap{}, fast_options(Algorithm::kMinimize));
  EXPECT_EQ(outcome.status, EcoOutcome::Status::kInfeasible);
  EXPECT_EQ(outcome.method, "qbf");
}

TEST(Engine, MultiTargetSatPath) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t0, t1, y0, y1);
      input a, b, c, t0, t1;
      output y0, y1;
      and (y0, t0, c);
      or  (y1, t1, c);
      xor (axb, a, b);
      and (anb, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y0, y1);
      input a, b, c;
      output y0, y1;
      xor (w0, a, b);
      and (y0, w0, c);
      and (w1, a, b);
      or  (y1, w1, c);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 5}, {"b", 5}, {"c", 1}, {"axb", 1}, {"anb", 1}};
  const EcoOutcome outcome = run_eco(impl, spec, weights, fast_options(Algorithm::kMinimize));
  ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(outcome.method, "sat");
  ASSERT_EQ(outcome.targets.size(), 2u);
  // Each patch should be the matching cheap divisor.
  EXPECT_LE(outcome.total_cost, 2);
}

TEST(Engine, StructuralFallbackWhenExpansionCapped) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t0, t1, y0, y1);
      input a, b, c, t0, t1;
      output y0, y1;
      and (y0, t0, c);
      or  (y1, t1, c);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y0, y1);
      input a, b, c;
      output y0, y1;
      xor (w0, a, b);
      and (y0, w0, c);
      and (w1, a, b);
      or  (y1, w1, c);
    endmodule
  )");
  EngineOptions options = fast_options(Algorithm::kMinimize);
  options.max_expansion_nodes = 0;  // force the structural path
  const EcoOutcome outcome = run_eco(impl, spec, net::WeightMap{}, options);
  ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(outcome.method, "structural");
  for (const auto& t : outcome.targets) EXPECT_TRUE(t.structural);
}

TEST(Engine, ForceStructuralWithCegarMin) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t, y);
      input a, b, c, t;
      output y;
      or  (y, t, c);
      and (ab, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y);
      input a, b, c;
      output y;
      and (w, a, b);
      or  (y, w, c);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", 50}, {"b", 50}, {"c", 50}, {"ab", 1}};
  EngineOptions options = fast_options(Algorithm::kSatPruneCegarMin);
  options.force_structural = true;
  const EcoOutcome outcome = run_eco(impl, spec, weights, options);
  ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(outcome.method, "structural+cegar_min");
  // CEGAR_min should discover that the patch cone is expressible over the
  // cheap equivalent signal `ab` (plus possibly c), beating the PI support.
  EXPECT_LT(outcome.total_cost, 150);

  // Compare against plain structural (no CEGAR_min) to confirm improvement.
  EngineOptions plain = fast_options(Algorithm::kMinimize);
  plain.force_structural = true;
  const EcoOutcome base = run_eco(impl, spec, weights, plain);
  ASSERT_EQ(base.status, EcoOutcome::Status::kPatched);
  EXPECT_LE(outcome.total_cost, base.total_cost);
}

TEST(Engine, ConstantPatchFunctions) {
  // Spec forces y = c regardless: patch t must be constant 0 (or any value
  // that makes t|0 ... here y_impl = t | c vs spec y = c -> t must be 0 when
  // c = 0 -> patch = 0 works).
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (c, t, y);
      input c, t;
      output y;
      or (y, t, c);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (c, y);
      input c;
      output y;
      buf (y, c);
    endmodule
  )");
  const EcoOutcome outcome = run_eco(impl, spec, net::WeightMap{}, fast_options(Algorithm::kMinimize));
  ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(outcome.total_cost, 0);
  EXPECT_EQ(outcome.patch_gates, 0u);
}

// Per-run SAT stat attribution: EngineStats.sat_* comes from a per-run
// accumulator, not from differencing the process-wide totals, so two engines
// running concurrently — sharing an executor, with their verification steps
// bouncing between threads — must report exactly the stats of their solo
// runs. (The old differencing scheme failed precisely here: any solver
// destroyed by the *other* run inside the window inflated both reports.)
TEST(Engine, ConcurrentRunsKeepExactPerRunSatAttribution) {
  std::vector<EcoProblem> problems;
  for (const uint64_t seed : {111ULL, 222ULL}) {
    Rng rng(seed);
    const net::Network base = benchgen::make_random_logic(8, 6, 80, rng);
    const benchgen::EcoInstance instance = benchgen::make_eco_instance(base, 2, rng);
    const net::WeightMap weights =
        benchgen::make_weights(instance.impl, benchgen::WeightType::kT1, rng);
    problems.push_back(make_problem(instance.impl, instance.spec, weights));
  }

  // Solo reference runs, strictly serial.
  std::vector<EcoOutcome> solo;
  for (const EcoProblem& p : problems) solo.push_back(run_eco(p, fast_options(Algorithm::kMinimize)));

  // Both runs concurrently on one shared pool; each also hands the executor
  // to the engine so the verification steps overlap assembly and may execute
  // on whichever thread picks them up.
  util::Executor executor(2);
  EngineOptions options = fast_options(Algorithm::kMinimize);
  options.executor = &executor;
  std::vector<EcoOutcome> conc(problems.size());
  executor.parallel_for(problems.size(), [&](size_t i) { conc[i] = run_eco(problems[i], options); });

  for (size_t i = 0; i < problems.size(); ++i) {
    ASSERT_EQ(conc[i].status, solo[i].status) << "problem " << i;
    EXPECT_EQ(conc[i].total_cost, solo[i].total_cost);
    EXPECT_EQ(conc[i].patch_gates, solo[i].patch_gates);
    EXPECT_EQ(conc[i].method, solo[i].method);
    EXPECT_EQ(conc[i].stats.sat_solvers, solo[i].stats.sat_solvers) << "problem " << i;
    EXPECT_EQ(conc[i].stats.sat_solves, solo[i].stats.sat_solves) << "problem " << i;
    EXPECT_EQ(conc[i].stats.sat_decisions, solo[i].stats.sat_decisions) << "problem " << i;
    EXPECT_EQ(conc[i].stats.sat_propagations, solo[i].stats.sat_propagations) << "problem " << i;
    EXPECT_EQ(conc[i].stats.sat_conflicts, solo[i].stats.sat_conflicts) << "problem " << i;
    EXPECT_EQ(conc[i].stats.sat_restarts, solo[i].stats.sat_restarts) << "problem " << i;
    EXPECT_GT(conc[i].stats.sat_solvers, 0u);
  }
}

// Property: over random generated instances, every algorithm produces a
// verified patch, and on single-target instances the cost-aware mode never
// exceeds the baseline's cost. (Single-target only: minimize starts from the
// same final-conflict core as the baseline and only shrinks or swaps toward
// cheaper divisors, so its cost is a deterministic lower bound there. With
// several targets the smaller first patch changes the circuit later targets
// are solved against, and the union cost of the diverged trajectories is not
// ordered.)
class EngineRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineRandomTest, RandomInstancesPatchedAndVerified) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863ULL + 41);
  for (int iter = 0; iter < 3; ++iter) {
    const int num_targets = 1 + static_cast<int>(rng.below(3));
    const net::Network base = benchgen::make_random_logic(
        6 + static_cast<int>(rng.below(6)), 4 + static_cast<int>(rng.below(4)),
        40 + static_cast<int>(rng.below(80)), rng);
    benchgen::EcoInstance instance;
    try {
      instance = benchgen::make_eco_instance(base, num_targets, rng);
    } catch (const std::runtime_error&) {
      continue;  // not enough observable gates in this draw
    }
    const net::WeightMap weights = benchgen::make_weights(
        instance.impl, static_cast<benchgen::WeightType>(rng.below(8)), rng);
    const EcoProblem problem = make_problem(instance.impl, instance.spec, weights);

    int64_t baseline_cost = -1;
    for (const Algorithm algorithm :
         {Algorithm::kBaseline, Algorithm::kMinimize, Algorithm::kSatPruneCegarMin}) {
      const EcoOutcome outcome = run_eco(problem, fast_options(algorithm));
      ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched)
          << "algorithm " << static_cast<int>(algorithm) << " failed on seed "
          << GetParam() << " iter " << iter;
      EXPECT_TRUE(outcome.verified);
      if (algorithm == Algorithm::kBaseline) {
        baseline_cost = outcome.total_cost;
      } else if (algorithm == Algorithm::kMinimize && num_targets == 1) {
        EXPECT_LE(outcome.total_cost, baseline_cost)
            << "single-target instance, seed " << GetParam() << " iter " << iter;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace eco::core
