// Chaos suite: sweep the fault-injection matrix through full engine runs
// and assert the crash-proof contract of docs/ROBUSTNESS.md:
//   1. run_eco never throws and never crashes, whatever fires;
//   2. a deadline-bounded run never hangs far past its budget;
//   3. a patch reported `verified` is confirmed by an independent CEC run
//      with every fault disarmed — injected faults may lose results, but
//      they must never forge one.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aig/ops.hpp"
#include "benchgen/suite.hpp"
#include "cec/cec.hpp"
#include "eco/engine.hpp"
#include "eco/problem.hpp"
#include "net/verilog.hpp"
#include "util/faultpoint.hpp"
#include "util/timer.hpp"

namespace eco::core {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

EngineOptions chaos_options() {
  EngineOptions options;
  options.conflict_budget = 100000;
  options.max_expansion_nodes = 500000;
  options.time_budget = 20;
  options.qbf.max_iterations = 500;
  return options;
}

/// Rebuilds the verification miter from scratch — same construction as the
/// engine's verify phase, but run with all faults disarmed, so it cannot be
/// fooled by an injected verify fault.
bool independently_equivalent(const EcoProblem& problem, const aig::Aig& patched) {
  aig::Aig check;
  std::vector<aig::Lit> x;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    x.push_back(check.add_pi(problem.spec.pi_name(i)));

  std::vector<aig::Lit> impl_map(patched.num_nodes(), aig::kLitInvalid);
  impl_map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    impl_map[patched.pi_node(i)] = x[i];
  for (uint32_t t = 0; t < problem.num_targets(); ++t)
    impl_map[patched.pi_node(problem.target_pi(t))] = aig::kLitFalse;
  std::vector<aig::Lit> impl_roots;
  for (uint32_t i = 0; i < patched.num_pos(); ++i) impl_roots.push_back(patched.po_lit(i));
  const auto impl_pos = aig::transfer(patched, check, impl_roots, impl_map);

  std::vector<aig::Lit> spec_map(problem.spec.num_nodes(), aig::kLitInvalid);
  spec_map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    spec_map[problem.spec.pi_node(i)] = x[i];
  std::vector<aig::Lit> spec_roots;
  for (uint32_t i = 0; i < problem.spec.num_pos(); ++i)
    spec_roots.push_back(problem.spec.po_lit(i));
  const auto spec_pos = aig::transfer(problem.spec, check, spec_roots, spec_map);

  std::vector<aig::Lit> diffs;
  for (size_t i = 0; i < impl_pos.size(); ++i)
    diffs.push_back(check.add_xor(impl_pos[i], spec_pos[i]));
  const aig::Lit out = check.add_or_multi(diffs);
  return cec::check_const0(check, out).status == cec::Status::kEquivalent;
}

/// One chaos run: arm \p spec, run the engine on benchgen unit \p unit, and
/// assert the contract. Returns the outcome for spec-specific checks.
EcoOutcome chaos_run(int unit, const std::string& spec, bool ladder) {
  const benchgen::EcoUnit u = benchgen::make_unit(unit, /*seed=*/20170912);
  const EcoProblem problem = make_problem(u.impl, u.spec, u.weights);

  EXPECT_TRUE(fault::arm(spec)) << spec;
  EngineOptions options = chaos_options();
  options.ladder = ladder;
  Timer timer;
  const EcoOutcome outcome = run_eco(problem, options);  // must not throw
  const double elapsed = timer.seconds();
  fault::disarm_all();

  // Never hang: time_budget 20s, plus bounded grace windows for the
  // structural path and verification, times up to 5 ladder attempts, is
  // still far under this ceiling on these tiny units.
  EXPECT_LT(elapsed, 120.0) << spec;

  // Always a structured outcome.
  const auto s = outcome.status;
  EXPECT_TRUE(s == EcoOutcome::Status::kPatched || s == EcoOutcome::Status::kInfeasible ||
              s == EcoOutcome::Status::kUnknown || s == EcoOutcome::Status::kError)
      << spec;
  if (s == EcoOutcome::Status::kError) {
    EXPECT_NE(outcome.fail_reason, FailReason::kNone) << spec;
  }
  EXPECT_FALSE(outcome.stats.ladder.empty()) << spec;

  // Never forge a verified patch.
  if (outcome.verified) {
    EXPECT_TRUE(independently_equivalent(problem, outcome.patched_impl)) << spec;
  }
  return outcome;
}

EcoOutcome chaos_run(int unit, const std::string& spec) {
  return chaos_run(unit, spec, /*ladder=*/true);
}

TEST_F(ChaosTest, BaselineNoFaultsPatches) {
  const EcoOutcome outcome = chaos_run(0, "sat.budget:0");  // armed but never fires
  EXPECT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(outcome.fail_reason, FailReason::kNone);
  EXPECT_EQ(outcome.stats.ladder.size(), 1u);  // no escalation happened
}

TEST_F(ChaosTest, SatBudgetAlwaysFails) {
  // Every solve reports budget exhaustion: the SAT path cannot conclude;
  // whatever comes out, the contract holds and nothing is forged.
  chaos_run(0, "sat.budget");
}

TEST_F(ChaosTest, CnfLoadAlwaysFails) {
  // CNF encoding throws bad_alloc at every solver: ends kError/kMemory or
  // recovers via rungs that avoid the failing path.
  const EcoOutcome outcome = chaos_run(0, "cnf.load");
  if (outcome.status == EcoOutcome::Status::kError) {
    EXPECT_EQ(outcome.fail_reason, FailReason::kMemory);
  }
}

TEST_F(ChaosTest, WindowExtractAlwaysFails) {
  // The window phase throws before anything else runs: every attempt ends
  // kError with kInternal (a runtime_error escaping a phase is a bug class).
  const EcoOutcome outcome = chaos_run(0, "window.extract");
  EXPECT_EQ(outcome.status, EcoOutcome::Status::kError);
  EXPECT_EQ(outcome.fail_reason, FailReason::kInternal);
  EXPECT_FALSE(outcome.fail_detail.empty());
}

TEST_F(ChaosTest, QbfIterCapAlwaysFires) {
  // Feasibility check gives up instantly: the SAT path must still solve the
  // unit on its own.
  chaos_run(0, "qbf.itercap");
}

TEST_F(ChaosTest, VerifyTimeoutAlwaysFires) {
  // Verification is inconclusive: patch ships unverified, never `verified`.
  const EcoOutcome outcome = chaos_run(0, "verify.timeout");
  EXPECT_FALSE(outcome.verified);
  if (outcome.status == EcoOutcome::Status::kPatched) {
    EXPECT_EQ(outcome.verification, EcoOutcome::Verification::kInconclusive);
  }
}

TEST_F(ChaosTest, AllocGuardAlwaysFires) {
  // The expansion allocation guard trips on every target: the SAT path
  // falls back; the structural path must still deliver.
  chaos_run(0, "alloc.guard");
}

TEST_F(ChaosTest, IntermittentFaultsAcrossSites) {
  // Probabilistic chaos across several sites at once, deterministic seed.
  chaos_run(1, "sat.budget:0.3:11,cnf.load:0.1:12,alloc.guard:0.5:13,verify.timeout:0.5:14");
}

TEST_F(ChaosTest, LadderOffStillCrashProof) {
  const EcoOutcome outcome = chaos_run(0, "window.extract", /*ladder=*/false);
  EXPECT_EQ(outcome.status, EcoOutcome::Status::kError);
  EXPECT_EQ(outcome.fail_reason, FailReason::kInternal);
  EXPECT_EQ(outcome.stats.ladder.size(), 1u);  // single attempt, no rungs
}

TEST_F(ChaosTest, LadderRecoversFromTransientWindowFault) {
  // The window fault fires on the first attempt only (prob chosen so draw 0
  // fires, later draws mostly don't): the ladder should recover a patch.
  const benchgen::EcoUnit u = benchgen::make_unit(0, /*seed=*/20170912);
  const EcoProblem problem = make_problem(u.impl, u.spec, u.weights);
  // Find a seed whose first draw fires at prob 0.4 — deterministic search.
  for (uint64_t seed = 1; seed < 64; ++seed) {
    fault::disarm_all();
    ASSERT_TRUE(fault::arm("window.extract:0.4:" + std::to_string(seed)));
    if (!fault::should_fail(fault::Site::kWindowExtract)) continue;
    // Re-arm to reset the draw counter: draw 0 fires for this seed.
    ASSERT_TRUE(fault::arm("window.extract:0.4:" + std::to_string(seed)));
    EngineOptions options = chaos_options();
    const EcoOutcome outcome = run_eco(problem, options);
    fault::disarm_all();
    // The primary attempt errored; some rung ran after it.
    ASSERT_GE(outcome.stats.ladder.size(), 2u);
    EXPECT_EQ(outcome.stats.ladder[0].result, "error");
    EXPECT_EQ(outcome.stats.ladder[0].fail_reason, "internal");
    if (outcome.verified) {
      EXPECT_TRUE(independently_equivalent(problem, outcome.patched_impl));
    }
    return;
  }
  FAIL() << "no seed with a firing first draw found";
}

TEST_F(ChaosTest, MemoryBudgetEndsRunAsMemory) {
  // A tiny cooperative memory budget: the SAT path's quantify charge trips
  // it; the run must end kUnknown/kError with a memory classification and
  // must not escalate (the account is shared across rungs).
  const benchgen::EcoUnit u = benchgen::make_unit(0, /*seed=*/20170912);
  const EcoProblem problem = make_problem(u.impl, u.spec, u.weights);
  EngineOptions options = chaos_options();
  options.cancel = CancelToken(0.0, /*memory_budget_bytes=*/1);
  const EcoOutcome outcome = run_eco(problem, options);
  if (outcome.status == EcoOutcome::Status::kUnknown ||
      outcome.status == EcoOutcome::Status::kError) {
    EXPECT_EQ(outcome.fail_reason, FailReason::kMemory);
  }
  EXPECT_EQ(outcome.stats.ladder.size(), 1u);
}

TEST_F(ChaosTest, ExternalStopEndsRunAsCancelled) {
  // Stop requested before the run starts: the engine winds down immediately
  // with kCancelled and the ladder must not retry.
  const benchgen::EcoUnit u = benchgen::make_unit(0, /*seed=*/20170912);
  const EcoProblem problem = make_problem(u.impl, u.spec, u.weights);
  EngineOptions options = chaos_options();
  CancelToken stop = CancelToken::stoppable();
  stop.request_stop();
  options.cancel = stop;
  const EcoOutcome outcome = run_eco(problem, options);
  if (outcome.status == EcoOutcome::Status::kUnknown) {
    EXPECT_EQ(outcome.fail_reason, FailReason::kCancelled);
  }
  EXPECT_EQ(outcome.stats.ladder.size(), 1u);
}

TEST_F(ChaosTest, NetParseFaultThrowsParseErrorAtTheFrontEnd) {
  ASSERT_TRUE(fault::arm("net.parse"));
  EXPECT_THROW(net::parse_verilog_string("module m (a, y); input a; output y; "
                                         "buf g (y, a); endmodule"),
               net::ParseError);
}

TEST_F(ChaosTest, InconsistentNetworksBecomeErrorOutcome) {
  // The run_eco(Network, ...) overload owns the make_problem boundary:
  // inconsistent inputs become kError/kInconsistentInput, never a throw.
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, t, y);
      input a, t;
      output y;
      and g1 (y, a, t);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, y, z);
      input a;
      output y, z;
      buf g1 (y, a);
      not g2 (z, a);
    endmodule
  )");
  const EcoOutcome outcome = run_eco(impl, spec, {}, chaos_options());
  EXPECT_EQ(outcome.status, EcoOutcome::Status::kError);
  EXPECT_EQ(outcome.fail_reason, FailReason::kInconsistentInput);
  EXPECT_FALSE(outcome.fail_detail.empty());
}

}  // namespace
}  // namespace eco::core
