#include <gtest/gtest.h>

#include "aig/sim.hpp"
#include "eco/miter.hpp"
#include "eco/patchfunc.hpp"
#include "eco/problem.hpp"
#include "eco/satprune.hpp"
#include "eco/structural.hpp"
#include "eco/support.hpp"
#include "eco/window.hpp"
#include "net/verilog.hpp"
#include "qbf/qbf2.hpp"

namespace eco::core {
namespace {

/// Reference problem: the old implementation computed y = t | c where the
/// old t logic has been cut out; the new spec wants y = (a & b) | c and
/// z = a ^ b on an untouched output. Divisors include a redundant internal
/// signal `ab` that equals a & b, making a 1-divisor patch possible.
EcoProblem reference_problem(int64_t cost_a = 5, int64_t cost_b = 5, int64_t cost_ab = 1) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t, y, z);
      input a, b, c, t;
      output y, z;
      or  g1 (y, t, c);
      xor g2 (z, a, b);
      and g3 (ab, a, b);   // redundant: a handy divisor
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y, z);
      input a, b, c;
      output y, z;
      and g1 (w, a, b);
      or  g2 (y, w, c);
      xor g3 (z, a, b);
    endmodule
  )");
  net::WeightMap weights;
  weights.weights = {{"a", cost_a}, {"b", cost_b}, {"c", 2}, {"ab", cost_ab}, {"z", 7}, {"y", 9}};
  return make_problem(impl, spec, weights);
}

TEST(Problem, MakeProblemExtractsTargetsAndDivisors) {
  const EcoProblem p = reference_problem();
  EXPECT_EQ(p.num_shared_pis(), 3u);
  EXPECT_EQ(p.num_targets(), 1u);
  EXPECT_EQ(p.target_names, (std::vector<std::string>{"t"}));
  // Divisors: a, b, c, ab, z (y is in the target's TFO and must be absent).
  std::vector<std::string> names;
  for (const auto& d : p.divisors) names.push_back(d.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "ab"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "z"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "y"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "t"), names.end());
  // Cost-sorted.
  for (size_t i = 1; i < p.divisors.size(); ++i)
    EXPECT_LE(p.divisors[i - 1].cost, p.divisors[i].cost);
}

TEST(Problem, RejectsInterfaceMismatch) {
  const net::Network impl = net::parse_verilog_string(
      "module i (a, t, y); input a, t; output y; and (y, a, t); endmodule");
  const net::Network bad_spec = net::parse_verilog_string(
      "module s (a, b, y); input a, b; output y; and (y, a, b); endmodule");
  net::WeightMap w;
  EXPECT_THROW(make_problem(impl, bad_spec, w), std::runtime_error);
}

TEST(Problem, RejectsWhenNoTargets) {
  const net::Network impl = net::parse_verilog_string(
      "module i (a, y); input a; output y; buf (y, a); endmodule");
  const net::Network spec = net::parse_verilog_string(
      "module s (a, y); input a; output y; not (y, a); endmodule");
  net::WeightMap w;
  EXPECT_THROW(make_problem(impl, spec, w), std::runtime_error);
}

TEST(Window, ComputesAffectedConeAndDivisors) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  ASSERT_TRUE(w.outside_equal);
  // Only PO "y" is affected by the target.
  ASSERT_EQ(w.affected_pos.size(), 1u);
  EXPECT_EQ(p.impl.po_name(w.affected_pos[0]), "y");
  EXPECT_FALSE(w.divisor_indices.empty());
}

TEST(Window, DetectsOutsideMismatch) {
  // Mutate the spec on the untouched output z: infeasible at this target.
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, c, t, y, z);
      input a, b, c, t;
      output y, z;
      or  g1 (y, t, c);
      xor g2 (z, a, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, c, y, z);
      input a, b, c;
      output y, z;
      and g1 (w, a, b);
      or  g2 (y, w, c);
      xnor g3 (z, a, b);   // differs, and the target cannot fix it
    endmodule
  )");
  const EcoProblem p = make_problem(impl, spec, net::WeightMap{});
  const Window w = compute_window(p);
  EXPECT_FALSE(w.outside_equal);
}

TEST(Miter, MismatchSemantics) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  // Miter inputs: a, b, c, t. M = 1 iff impl(y,z) != spec(y,z).
  // impl y = t | c ; spec y = (a&b) | c. Mismatch iff t != a&b and c = 0.
  for (uint32_t mm = 0; mm < 16; ++mm) {
    const bool a = mm & 1, b = mm & 2, c = mm & 4, t = mm & 8;
    const std::vector<bool> pattern = {a, b, c, t};
    const bool expect_mismatch = !c && (t != (a && b));
    EXPECT_EQ(aig::eval(m.aig, pattern)[0], expect_mismatch) << "minterm " << mm;
  }
}

TEST(Miter, CofactorTarget) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const EcoMiter m0 = cofactor_target(m, 0, false);
  // M(0): mismatch iff a&b and c=0 (impl y = c, spec y = (a&b)|c).
  for (uint32_t mm = 0; mm < 8; ++mm) {
    const bool a = mm & 1, b = mm & 2, c = mm & 4;
    const std::vector<bool> pattern = {a, b, c, false};
    EXPECT_EQ(aig::eval(m0.aig, pattern)[0], a && b && !c);
  }
}

TEST(Miter, QuantifyRemovesDependence) {
  // Two targets driving one output through an OR: quantifying one target
  // universally ANDs its cofactors.
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, t0, t1, y);
      input a, t0, t1;
      output y;
      or (y, t0, t1);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, y);
      input a;
      output y;
      buf (y, a);
    endmodule
  )");
  const EcoProblem p = make_problem(impl, spec, net::WeightMap{});
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const EcoMiter mq = quantify_targets(m, {1}, 100000);
  // M_q(t0, a) = M(t0, 0, a) & M(t0, 1, a).
  // M(t0,t1,a) = (t0|t1) != a. Quantified: ((t0|0)!=a) & ((t0|1)!=a)
  //            = (t0 != a) & (1 != a) = (t0 != a) & !a = t0 & !a.
  for (uint32_t mm = 0; mm < 4; ++mm) {
    const bool a = mm & 1, t0 = mm & 2;
    // PI order: a, t0, t1 (t1 now irrelevant).
    EXPECT_EQ(aig::eval(mq.aig, {a, t0, false})[0], t0 && !a);
    EXPECT_EQ(aig::eval(mq.aig, {a, t0, true})[0], t0 && !a);
  }
}

TEST(Miter, QuantifyRespectsNodeBudget) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  EXPECT_THROW(quantify_targets(m, {0}, 0), std::runtime_error);
}

size_t divisor_index_by_name(const EcoProblem& p, const std::string& name) {
  for (size_t i = 0; i < p.divisors.size(); ++i)
    if (p.divisors[i].name == name) return i;
  ADD_FAILURE() << "divisor not found: " << name;
  return SIZE_MAX;
}

TEST(Support, FindsCheapSingleDivisor) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  SupportInstance inst(m, 0, p.divisors, w.divisor_indices);
  SupportOptions options;
  const SupportResult r = compute_support(inst, p.divisors, options);
  ASSERT_TRUE(r.feasible);
  // `ab` (cost 1) alone is a valid support: patch = ab.
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(p.divisors[r.chosen[0]].name, "ab");
  EXPECT_EQ(r.cost, 1);
}

TEST(Support, AnalyzeFinalModeIsSoundButLooser) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  SupportInstance inst(m, 0, p.divisors, w.divisor_indices);
  SupportOptions options;
  options.mode = SupportMode::kAnalyzeFinal;
  const SupportResult r = compute_support(inst, p.divisors, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.chosen.size(), 1u);
  // The returned subset must itself be sufficient.
  EXPECT_TRUE(inst.check_subset(r.chosen).is_false());
}

TEST(Support, CostOrderingPrefersCheapDivisors) {
  // Make `ab` expensive: the engine should pick {a, b} (cost 4) instead.
  const EcoProblem p = reference_problem(/*cost_a=*/2, /*cost_b=*/2, /*cost_ab=*/100);
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  SupportInstance inst(m, 0, p.divisors, w.divisor_indices);
  const SupportResult r = compute_support(inst, p.divisors, SupportOptions{});
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.cost, 4);
  for (const size_t g : r.chosen) EXPECT_NE(p.divisors[g].name, "ab");
}

TEST(Support, InfeasibleWithEmptyCandidates) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  SupportInstance inst(m, 0, p.divisors, {});
  const SupportResult r = compute_support(inst, p.divisors, SupportOptions{});
  EXPECT_FALSE(r.feasible);
}

TEST(SatPrune, MatchesOrBeatsMinimize) {
  const EcoProblem p = reference_problem(3, 3, 4);
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  SupportInstance inst(m, 0, p.divisors, w.divisor_indices);
  const SupportResult minimized = compute_support(inst, p.divisors, SupportOptions{});
  ASSERT_TRUE(minimized.feasible);
  const SatPruneResult pruned = sat_prune(inst, p.divisors, SatPruneOptions{}, &minimized.chosen);
  ASSERT_TRUE(pruned.feasible);
  EXPECT_TRUE(pruned.optimal);
  EXPECT_LE(pruned.cost, minimized.cost);
  EXPECT_TRUE(inst.check_subset(pruned.chosen).is_false());
}

TEST(SatPrune, FindsTrueMinimumAgainstBruteForce) {
  // ab costs 3; {a, b} costs 2+2=4 -> minimum is {ab}.
  const EcoProblem p = reference_problem(2, 2, 3);
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  SupportInstance inst(m, 0, p.divisors, w.divisor_indices);
  const SatPruneResult pruned = sat_prune(inst, p.divisors, SatPruneOptions{});
  ASSERT_TRUE(pruned.feasible);
  EXPECT_TRUE(pruned.optimal);
  EXPECT_EQ(pruned.cost, 3);
  ASSERT_EQ(pruned.chosen.size(), 1u);
  EXPECT_EQ(p.divisors[pruned.chosen[0]].name, "ab");
}

TEST(PatchFunc, SingleCubeCover) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  const std::vector<size_t> support = {divisor_index_by_name(p, "ab")};
  const PatchFuncResult r = compute_patch_cover(m, 0, p.divisors, support, PatchFuncOptions{});
  ASSERT_TRUE(r.ok);
  // Patch = ab: one cube, one positive literal of variable 0.
  ASSERT_EQ(r.cover.cubes.size(), 1u);
  EXPECT_EQ(r.cover.cubes[0].lits(), (std::vector<sop::Lit>{sop::lit_pos(0)}));
}

TEST(PatchFunc, TwoVariableCover) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  const std::vector<size_t> support = {divisor_index_by_name(p, "a"),
                                       divisor_index_by_name(p, "b")};
  const PatchFuncResult r = compute_patch_cover(m, 0, p.divisors, support, PatchFuncOptions{});
  ASSERT_TRUE(r.ok);
  // Patch = a & b.
  ASSERT_EQ(r.cover.cubes.size(), 1u);
  EXPECT_EQ(r.cover.cubes[0].num_lits(), 2u);
  EXPECT_FALSE(sop::lit_negated(r.cover.cubes[0].lits()[0]));
  EXPECT_FALSE(sop::lit_negated(r.cover.cubes[0].lits()[1]));
}

TEST(PatchFunc, BaselineCoreExpansionStillValid) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  const std::vector<size_t> support = {divisor_index_by_name(p, "a"),
                                       divisor_index_by_name(p, "b"),
                                       divisor_index_by_name(p, "c")};
  PatchFuncOptions options;
  options.use_minimize = false;
  const PatchFuncResult r = compute_patch_cover(m, 0, p.divisors, support, options);
  ASSERT_TRUE(r.ok);
  // Validity: on minterms where c=0, cover must equal a&b (c=1 is don't care).
  for (uint32_t mm = 0; mm < 4; ++mm) {
    const bool a = mm & 1, b = mm & 2;
    EXPECT_EQ(r.cover.eval({a, b, false}), a && b);
  }
}

TEST(Structural, SingleTargetCofactorPatch) {
  const EcoProblem p = reference_problem();
  const Window w = compute_window(p);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors, w.affected_pos);
  const StructuralPatches sp = structural_patch_single(m, 0);
  ASSERT_TRUE(sp.ok);
  ASSERT_EQ(sp.patch.num_pos(), 1u);
  // Patch(x) = M(0, x) = a & b & !c; must satisfy a&b -> patch -> (a&b)|c
  // restricted to the care set c=0 (where patch value matters).
  for (uint32_t mm = 0; mm < 8; ++mm) {
    const bool a = mm & 1, b = mm & 2, c = mm & 4;
    const bool patch = aig::eval(sp.patch, {a, b, c})[0];
    if (!c) EXPECT_EQ(patch, a && b) << "minterm " << mm;
  }
}

TEST(Structural, MultiTargetCertificatePatch) {
  const net::Network impl = net::parse_verilog_string(R"(
    module impl (a, b, t0, t1, y0, y1);
      input a, b, t0, t1;
      output y0, y1;
      and (y0, t0, a);
      or  (y1, t1, b);
    endmodule
  )");
  const net::Network spec = net::parse_verilog_string(R"(
    module spec (a, b, y0, y1);
      input a, b;
      output y0, y1;
      and (y0, a, b);
      buf (y1, b);
    endmodule
  )");
  const EcoProblem p = make_problem(impl, spec, net::WeightMap{});
  ASSERT_EQ(p.num_targets(), 2u);
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  const auto cert = qbf::solve_exists_forall(m.aig, m.out, m.num_x);
  ASSERT_EQ(cert.status, qbf::Qbf2Status::kFalse);
  const StructuralPatches sp = structural_patch_multi(m, cert);
  ASSERT_TRUE(sp.ok);
  ASSERT_EQ(sp.patch.num_pos(), 2u);
  // Substituting the patches must make impl equal to spec:
  // y0 = patch0 & a must equal a & b ; y1 = patch1 | b must equal b.
  for (uint32_t mm = 0; mm < 4; ++mm) {
    const bool a = mm & 1, b = mm & 2;
    const auto patch = aig::eval(sp.patch, {a, b});
    EXPECT_EQ(patch[0] && a, a && b) << "y0 at " << mm;
    EXPECT_EQ(patch[1] || b, b) << "y1 at " << mm;
  }
}

TEST(Structural, MultiTargetRequiresCertificate) {
  const EcoProblem p = reference_problem();
  const EcoMiter m = build_eco_miter(p.impl, p.spec, p.divisors);
  qbf::Qbf2Result empty;
  EXPECT_FALSE(structural_patch_multi(m, empty).ok);
}

}  // namespace
}  // namespace eco::core
