// Tests for util/jsonr, the minimal JSON reader used by ecoprof and the
// observability tests: value types, nesting, string escapes (incl. \uXXXX
// and surrogate pairs), number parsing, and error reporting with offsets.

#include "util/jsonr.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using eco::JsonValue;
using eco::json_parse;

TEST(JsonrTest, ParsesScalars) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->as_bool());
  EXPECT_FALSE(json_parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2")->as_number(), -1250.0);
  EXPECT_EQ(json_parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonrTest, ParsesNestedDocument) {
  const auto v = json_parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": -3})");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->contains("a"));
  ASSERT_EQ((*v)["a"].as_array().size(), 3u);
  EXPECT_DOUBLE_EQ((*v)["a"].as_array()[1].as_number(), 2.0);
  EXPECT_TRUE((*v)["a"].as_array()[2]["b"].as_bool());
  EXPECT_TRUE((*v)["c"]["d"].is_null());
  EXPECT_DOUBLE_EQ((*v)["e"].as_number(), -3.0);
  // Missing keys read as typed fallbacks rather than faulting.
  EXPECT_FALSE(v->contains("zz"));
  EXPECT_TRUE((*v)["zz"].is_null());
  EXPECT_DOUBLE_EQ((*v)["zz"].as_number(42.0), 42.0);
  EXPECT_TRUE((*v)["zz"].as_string().empty());
}

TEST(JsonrTest, DecodesStringEscapes) {
  const auto v = json_parse(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\nd\tA");
  // Two-byte, three-byte, and surrogate-pair code points decode to UTF-8.
  EXPECT_EQ(json_parse(R"("é")")->as_string(), "\xc3\xa9");
  EXPECT_EQ(json_parse(R"("€")")->as_string(), "\xe2\x82\xac");
  EXPECT_EQ(json_parse(R"("😀")")->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonrTest, IntegersUpTo2To53AreExact) {
  const auto v = json_parse("9007199254740992");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(static_cast<uint64_t>(v->as_number()), 9007199254740992ull);
}

TEST(JsonrTest, ReportsErrorsWithOffset) {
  std::string err;
  EXPECT_FALSE(json_parse("{\"a\": }", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
  err.clear();
  EXPECT_FALSE(json_parse("[1, 2", &err).has_value());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(json_parse("{} trailing", &err).has_value());
  EXPECT_NE(err.find("trailing"), std::string::npos);
  EXPECT_FALSE(json_parse("", &err).has_value());
  EXPECT_FALSE(json_parse("{\"dup\" 1}", &err).has_value());
  EXPECT_FALSE(json_parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(json_parse("nul", &err).has_value());
}

TEST(JsonrTest, RejectsExcessiveNesting) {
  std::string doc(300, '[');
  doc += std::string(300, ']');
  std::string err;
  EXPECT_FALSE(json_parse(doc, &err).has_value());
  EXPECT_NE(err.find("deep"), std::string::npos);
}

TEST(JsonrTest, ParsesFileAndReportsMissingOne) {
  const std::string path = ::testing::TempDir() + "/jsonr_roundtrip.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"k\": [true, 7]}", f);
  std::fclose(f);
  std::string err;
  const auto v = eco::json_parse_file(path, &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_DOUBLE_EQ((*v)["k"].as_array()[1].as_number(), 7.0);
  EXPECT_FALSE(eco::json_parse_file("/nonexistent-dir/x.json", &err).has_value());
  EXPECT_FALSE(err.empty());
}
