#include <gtest/gtest.h>

#include "aig/sim.hpp"
#include "sop/cover.hpp"
#include "sop/factor.hpp"
#include "sop/synth.hpp"
#include "util/rng.hpp"

namespace eco::sop {
namespace {

Cube cube(std::initializer_list<Lit> lits) { return Cube(std::vector<Lit>(lits)); }

TEST(Cube, LiteralHelpers) {
  EXPECT_EQ(lit_pos(3), 6u);
  EXPECT_EQ(lit_neg(3), 7u);
  EXPECT_EQ(lit_var(7), 3u);
  EXPECT_TRUE(lit_negated(7));
  EXPECT_FALSE(lit_negated(6));
}

TEST(Cube, SortedAndDeduplicated) {
  const Cube c = cube({lit_neg(2), lit_pos(0), lit_pos(0)});
  EXPECT_EQ(c.lits(), (std::vector<Lit>{lit_pos(0), lit_neg(2)}));
}

TEST(Cube, Containment) {
  const Cube big = cube({lit_pos(0)});             // x0
  const Cube small = cube({lit_pos(0), lit_pos(1)});  // x0 x1
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
  const Cube taut = cube({});
  EXPECT_TRUE(taut.contains(big));
  EXPECT_FALSE(big.contains(taut));
}

TEST(Cube, Contradictory) {
  EXPECT_TRUE(cube({lit_pos(1), lit_neg(1)}).contradictory());
  EXPECT_FALSE(cube({lit_pos(1), lit_neg(2)}).contradictory());
}

TEST(Cube, EvalAndWithoutVar) {
  const Cube c = cube({lit_pos(0), lit_neg(1)});
  EXPECT_TRUE(c.eval({true, false}));
  EXPECT_FALSE(c.eval({true, true}));
  EXPECT_FALSE(c.eval({false, false}));
  const Cube reduced = c.without_var(1);
  EXPECT_EQ(reduced.lits(), (std::vector<Lit>{lit_pos(0)}));
}

TEST(Cover, EvalIsDisjunction) {
  Cover f;
  f.num_vars = 2;
  f.cubes = {cube({lit_pos(0)}), cube({lit_neg(1)})};  // x0 + !x1
  EXPECT_TRUE(f.eval({true, true}));
  EXPECT_TRUE(f.eval({false, false}));
  EXPECT_FALSE(f.eval({false, true}));
}

TEST(Cover, RemoveContainedCubes) {
  Cover f;
  f.num_vars = 3;
  f.cubes = {cube({lit_pos(0)}), cube({lit_pos(0), lit_pos(1)}),
             cube({lit_pos(2)}), cube({lit_pos(2)})};
  f.remove_contained_cubes();
  EXPECT_EQ(f.cubes.size(), 2u);
  EXPECT_EQ(f.cubes[0], cube({lit_pos(0)}));
  EXPECT_EQ(f.cubes[1], cube({lit_pos(2)}));
}

TEST(Cover, ToStringReadable) {
  Cover f;
  f.num_vars = 3;
  f.cubes = {cube({lit_pos(0), lit_neg(2)})};
  EXPECT_EQ(f.to_string(), "x0 !x2");
  f.cubes.clear();
  EXPECT_EQ(f.to_string(), "0");
}

TEST(Factor, ConstantsAndSingletons) {
  Cover empty;
  empty.num_vars = 2;
  EXPECT_EQ(factor(empty)->kind, FactorTree::Kind::kConst0);

  Cover taut;
  taut.num_vars = 2;
  taut.cubes = {cube({})};
  EXPECT_EQ(factor(taut)->kind, FactorTree::Kind::kConst1);

  Cover single;
  single.num_vars = 2;
  single.cubes = {cube({lit_pos(0), lit_neg(1)})};
  const auto tree = factor(single);
  EXPECT_EQ(tree->num_leaves(), 2u);
}

TEST(Factor, DropsContradictoryCubes) {
  Cover f;
  f.num_vars = 1;
  f.cubes = {cube({lit_pos(0), lit_neg(0)})};
  EXPECT_EQ(factor(f)->kind, FactorTree::Kind::kConst0);
}

TEST(Factor, SharesCommonLiteral) {
  // x0 x1 + x0 x2 -> x0 (x1 + x2): 3 leaves instead of 4.
  Cover f;
  f.num_vars = 3;
  f.cubes = {cube({lit_pos(0), lit_pos(1)}), cube({lit_pos(0), lit_pos(2)})};
  const auto tree = factor(f);
  EXPECT_EQ(tree->num_leaves(), 3u);
}

TEST(Factor, KnownFactoringExample) {
  // F = ab + ac + ad + bc -> a(b + c + d) + bc: 6 leaves (flat SOP has 8).
  Cover f;
  f.num_vars = 4;
  const Lit a = lit_pos(0), b = lit_pos(1), c = lit_pos(2), d = lit_pos(3);
  f.cubes = {cube({a, b}), cube({a, c}), cube({a, d}), cube({b, c})};
  const auto tree = factor(f);
  EXPECT_LE(tree->num_leaves(), 6u);
}

/// Checks tree equivalence with the cover on all minterms.
void expect_equivalent(const Cover& cover, const FactorTree& tree) {
  ASSERT_LE(cover.num_vars, 12u);
  for (uint32_t m = 0; m < (1u << cover.num_vars); ++m) {
    std::vector<bool> assignment(cover.num_vars);
    for (uint32_t i = 0; i < cover.num_vars; ++i) assignment[i] = ((m >> i) & 1) != 0;
    EXPECT_EQ(cover.eval(assignment), tree.eval(assignment)) << "minterm " << m;
  }
}

class FactorRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(FactorRandomTest, FactoringPreservesFunctionAndNeverGrows) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 37 + 5);
  for (int iter = 0; iter < 20; ++iter) {
    Cover f;
    f.num_vars = 3 + static_cast<uint32_t>(rng.below(6));
    const int num_cubes = 1 + static_cast<int>(rng.below(10));
    for (int c = 0; c < num_cubes; ++c) {
      std::vector<Lit> lits;
      for (uint32_t v = 0; v < f.num_vars; ++v) {
        const uint64_t r = rng.below(3);
        if (r == 0) lits.push_back(lit_pos(v));
        if (r == 1) lits.push_back(lit_neg(v));
      }
      f.cubes.push_back(Cube(std::move(lits)));
    }
    const auto tree = factor(f);
    expect_equivalent(f, *tree);
    EXPECT_LE(tree->num_leaves(), f.num_literals());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorRandomTest, ::testing::Range(0, 10));

TEST(Synth, TreeToAigMatchesEval) {
  Cover f;
  f.num_vars = 4;
  const Lit a = lit_pos(0), b = lit_pos(1), c = lit_pos(2), d = lit_neg(3);
  f.cubes = {cube({a, b}), cube({c, d}), cube({a, d})};

  aig::Aig g;
  std::vector<aig::Lit> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(g.add_pi());
  const aig::Lit factored = synthesize_cover(g, f, vars);
  const aig::Lit flat = synthesize_cover_flat(g, f, vars);
  g.add_po(factored, "factored");
  g.add_po(flat, "flat");
  const auto tts = aig::po_truth_tables(g);
  EXPECT_EQ(tts[0], tts[1]);
  for (uint32_t m = 0; m < 16; ++m) {
    std::vector<bool> assignment;
    for (int i = 0; i < 4; ++i) assignment.push_back(((m >> i) & 1) != 0);
    EXPECT_EQ(((tts[0][0] >> m) & 1) != 0, f.eval(assignment));
  }
}

TEST(Synth, MapsVariablesThroughGivenLiterals) {
  // Synthesize x0 & !x1 with var 0 mapped to an inverted signal.
  Cover f;
  f.num_vars = 2;
  f.cubes = {cube({lit_pos(0), lit_neg(1)})};
  aig::Aig g;
  const aig::Lit p = g.add_pi();
  const aig::Lit q = g.add_pi();
  const std::vector<aig::Lit> vars = {aig::lit_not(p), q};
  g.add_po(synthesize_cover(g, f, vars), "f");  // = !p & !q
  const auto tt = aig::po_truth_tables(g)[0];
  EXPECT_EQ(tt[0] & 0xFu, 0b0001u);
}

TEST(Synth, FactoredNotBiggerThanFlat) {
  Rng rng(77);
  for (int iter = 0; iter < 10; ++iter) {
    Cover f;
    f.num_vars = 6;
    for (int c = 0; c < 8; ++c) {
      std::vector<Lit> lits;
      for (uint32_t v = 0; v < f.num_vars; ++v) {
        const uint64_t r = rng.below(3);
        if (r == 0) lits.push_back(lit_pos(v));
        if (r == 1) lits.push_back(lit_neg(v));
      }
      f.cubes.push_back(Cube(std::move(lits)));
    }
    aig::Aig g_factored, g_flat;
    std::vector<aig::Lit> v1, v2;
    for (uint32_t i = 0; i < f.num_vars; ++i) {
      v1.push_back(g_factored.add_pi());
      v2.push_back(g_flat.add_pi());
    }
    const aig::Lit r1 = synthesize_cover(g_factored, f, v1);
    const aig::Lit r2 = synthesize_cover_flat(g_flat, f, v2);
    const aig::Lit roots1[] = {r1};
    const aig::Lit roots2[] = {r2};
    EXPECT_LE(g_factored.cone_size(roots1), g_flat.cone_size(roots2) + 2);
  }
}

}  // namespace
}  // namespace eco::sop
