#include <gtest/gtest.h>

#include <sstream>

#include "aig/sim.hpp"
#include "cec/cec.hpp"
#include "net/blif.hpp"
#include "util/rng.hpp"

namespace eco::net {
namespace {

using aig::Aig;
using aig::Lit;

TEST(Blif, ParsesSimpleAndOr) {
  const Aig g = parse_blif_string(R"(
.model m
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
)");
  EXPECT_EQ(g.num_pis(), 3u);
  EXPECT_EQ(g.num_pos(), 1u);
  for (uint32_t m = 0; m < 8; ++m) {
    const bool a = m & 1, b = m & 2, c = m & 4;
    EXPECT_EQ(aig::eval(g, {a, b, c})[0], (a && b) || c) << "minterm " << m;
  }
}

TEST(Blif, OffSetRowsComplement) {
  // y defined by its off-set: y = 0 iff a=1,b=1  ->  y = nand(a, b).
  const Aig g = parse_blif_string(
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n");
  for (uint32_t m = 0; m < 4; ++m) {
    const bool a = m & 1, b = m & 2;
    EXPECT_EQ(aig::eval(g, {a, b})[0], !(a && b));
  }
}

TEST(Blif, ConstantsAndDontCares) {
  const Aig g = parse_blif_string(R"(
.model m
.inputs a b
.outputs zero one f
.names zero
.names one
1
.names a b f
-1 1
.end
)");
  for (uint32_t m = 0; m < 4; ++m) {
    const bool a = m & 1, b = m & 2;
    const auto out = aig::eval(g, {a, b});
    EXPECT_FALSE(out[0]);
    EXPECT_TRUE(out[1]);
    EXPECT_EQ(out[2], b);
  }
}

TEST(Blif, LineContinuationAndComments) {
  const Aig g = parse_blif_string(
      "# header\n.model m\n.inputs a \\\n b\n.outputs y # trailing\n"
      ".names a b y\n11 1\n.end\n");
  EXPECT_EQ(g.num_pis(), 2u);
  EXPECT_EQ(aig::eval(g, {true, true})[0], true);
  EXPECT_EQ(aig::eval(g, {true, false})[0], false);
}

TEST(Blif, OutOfOrderDefinitions) {
  const Aig g = parse_blif_string(R"(
.model m
.inputs a b
.outputs y
.names t a y
11 1
.names a b t
-1 1
.end
)");
  for (uint32_t m = 0; m < 4; ++m) {
    const bool a = m & 1, b = m & 2;
    EXPECT_EQ(aig::eval(g, {a, b})[0], b && a);
  }
}

TEST(Blif, RejectsBadInput) {
  EXPECT_THROW(parse_blif_string(".model m\n.latch a b\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse_blif_string(".model m\n.inputs a\n.outputs y\n.end\n"),
               std::runtime_error);  // y undefined
  EXPECT_THROW(parse_blif_string(
                   ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n"),
               std::runtime_error);  // mixed polarity rows
  EXPECT_THROW(parse_blif_string(
                   ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"),
               std::runtime_error);  // pattern width
  EXPECT_THROW(parse_blif_string(
                   ".model m\n.inputs a\n.outputs y\n.names y z\n1 1\n.names z y\n1 1\n.end\n"),
               std::runtime_error);  // cycle
}

TEST(Blif, WriterRoundTrip) {
  Rng rng(41);
  for (int iter = 0; iter < 6; ++iter) {
    Aig g;
    std::vector<Lit> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(g.add_pi("x" + std::to_string(i)));
    for (int i = 0; i < 30; ++i) {
      const Lit a = pool[rng.below(pool.size())];
      const Lit b = pool[rng.below(pool.size())];
      pool.push_back(g.add_and(aig::lit_notif(a, rng.chance(1, 2)),
                               aig::lit_notif(b, rng.chance(1, 2))));
    }
    g.add_po(aig::lit_notif(pool.back(), rng.chance(1, 2)), "f");
    g.add_po(aig::kLitTrue, "konst");
    const Aig clean = g.cleanup();
    std::ostringstream text;
    write_blif(text, clean, "rt");
    const Aig back = parse_blif_string(text.str());
    EXPECT_EQ(cec::check_equivalence(clean, back).status, cec::Status::kEquivalent)
        << "iter " << iter;
    EXPECT_EQ(back.po_name(1), "konst");
  }
}

}  // namespace
}  // namespace eco::net
