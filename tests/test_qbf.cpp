#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/sim.hpp"
#include "qbf/qbf2.hpp"
#include "util/rng.hpp"

namespace eco::qbf {
namespace {

using aig::Aig;
using aig::Lit;
using aig::lit_not;

TEST(Qbf2, TrueWhenNoUniversalVars) {
  // ∃x. x — trivially true with witness x=1.
  Aig g;
  const Lit x = g.add_pi("x");
  g.add_po(x);
  const auto r = solve_exists_forall(g, x, 1);
  EXPECT_EQ(r.status, Qbf2Status::kTrue);
  ASSERT_EQ(r.witness_x.size(), 1u);
  EXPECT_TRUE(r.witness_x[0]);
}

TEST(Qbf2, FalseWhenMatrixUnsatisfiable) {
  Aig g;
  const Lit x = g.add_pi("x");
  g.add_pi("n");
  const Lit root = g.add_and(x, lit_not(x));  // constant 0
  g.add_po(root);
  const auto r = solve_exists_forall(g, root, 1);
  EXPECT_EQ(r.status, Qbf2Status::kFalse);
}

TEST(Qbf2, ForallBlocksWitness) {
  // ∃x ∀n (x & n): false — n=0 defeats any x.
  Aig g;
  const Lit x = g.add_pi("x");
  const Lit n = g.add_pi("n");
  const Lit root = g.add_and(x, n);
  g.add_po(root);
  const auto r = solve_exists_forall(g, root, 1);
  EXPECT_EQ(r.status, Qbf2Status::kFalse);
  ASSERT_FALSE(r.moves.empty());
}

TEST(Qbf2, ExistsBeatsForallWithXor) {
  // ∃x ∀n (x xor n): false.
  // ∃x ∀n (x or n): true with x=1.
  Aig g;
  const Lit x = g.add_pi("x");
  const Lit n = g.add_pi("n");
  g.add_po(g.add_xor(x, n));
  g.add_po(g.add_or(x, n));
  EXPECT_EQ(solve_exists_forall(g, g.po_lit(0), 1).status, Qbf2Status::kFalse);
  const auto r = solve_exists_forall(g, g.po_lit(1), 1);
  EXPECT_EQ(r.status, Qbf2Status::kTrue);
  EXPECT_TRUE(r.witness_x[0]);
}

TEST(Qbf2, BudgetYieldsUnknown) {
  Aig g;
  std::vector<Lit> xs, ns;
  for (int i = 0; i < 4; ++i) xs.push_back(g.add_pi());
  for (int i = 0; i < 4; ++i) ns.push_back(g.add_pi());
  Lit acc = aig::kLitFalse;
  for (int i = 0; i < 4; ++i) acc = g.add_xor(acc, g.add_and(xs[i], ns[i]));
  g.add_po(acc);
  Qbf2Options options;
  options.max_iterations = 1;
  const auto r = solve_exists_forall(g, acc, 4, options);
  EXPECT_EQ(r.status, Qbf2Status::kUnknown);
}

/// Validates a kFalse certificate: for every x some move j makes the matrix
/// false; and validates kTrue witnesses by exhaustive check.
void validate_result(const Aig& g, Lit root, uint32_t num_x, const Qbf2Result& r) {
  const uint32_t num_n = g.num_pis() - num_x;
  ASSERT_LE(g.num_pis(), 12u);
  if (r.status == Qbf2Status::kTrue) {
    // For the witness x*, all n must satisfy the matrix.
    for (uint32_t mn = 0; mn < (1u << num_n); ++mn) {
      std::vector<bool> pattern;
      for (uint32_t i = 0; i < num_x; ++i) pattern.push_back(r.witness_x[i]);
      for (uint32_t i = 0; i < num_n; ++i) pattern.push_back(((mn >> i) & 1) != 0);
      Aig copy = g;
      copy.add_po(root);
      EXPECT_TRUE(aig::eval(copy, pattern).back()) << "witness fails at n=" << mn;
    }
    return;
  }
  if (r.status == Qbf2Status::kFalse) {
    for (uint32_t mx = 0; mx < (1u << num_x); ++mx) {
      bool some_move_defeats = false;
      for (const auto& move : r.moves) {
        std::vector<bool> pattern;
        for (uint32_t i = 0; i < num_x; ++i) pattern.push_back(((mx >> i) & 1) != 0);
        for (uint32_t i = 0; i < num_n; ++i) pattern.push_back(move[i]);
        Aig copy = g;
        copy.add_po(root);
        if (!aig::eval(copy, pattern).back()) {
          some_move_defeats = true;
          break;
        }
      }
      EXPECT_TRUE(some_move_defeats) << "certificate incomplete at x=" << mx;
    }
  }
}

class Qbf2RandomTest : public ::testing::TestWithParam<int> {};

TEST_P(Qbf2RandomTest, VerdictMatchesBruteForceAndCertificatesAreValid) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151 + 11);
  for (int iter = 0; iter < 8; ++iter) {
    Aig g;
    const uint32_t num_x = 2 + static_cast<uint32_t>(rng.below(3));
    const uint32_t num_n = 1 + static_cast<uint32_t>(rng.below(3));
    std::vector<Lit> pool;
    for (uint32_t i = 0; i < num_x + num_n; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < 25; ++i) {
      const Lit a = pool[rng.below(pool.size())];
      const Lit b = pool[rng.below(pool.size())];
      pool.push_back(g.add_and(aig::lit_notif(a, rng.chance(1, 2)),
                               aig::lit_notif(b, rng.chance(1, 2))));
    }
    const Lit root = aig::lit_notif(pool.back(), rng.chance(1, 2));
    g.add_po(root);

    // Brute-force ∃x ∀n root(x, n).
    bool expected = false;
    for (uint32_t mx = 0; mx < (1u << num_x) && !expected; ++mx) {
      bool all_n = true;
      for (uint32_t mn = 0; mn < (1u << num_n) && all_n; ++mn) {
        std::vector<bool> pattern;
        for (uint32_t i = 0; i < num_x; ++i) pattern.push_back(((mx >> i) & 1) != 0);
        for (uint32_t i = 0; i < num_n; ++i) pattern.push_back(((mn >> i) & 1) != 0);
        all_n = aig::eval(g, pattern)[0];
      }
      expected = all_n;
    }

    const auto r = solve_exists_forall(g, root, num_x);
    ASSERT_NE(r.status, Qbf2Status::kUnknown);
    EXPECT_EQ(r.status == Qbf2Status::kTrue, expected);
    validate_result(g, root, num_x, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Qbf2RandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace eco::qbf
