// Tests for util/telemetry: counter/gauge/timer registry correctness,
// hierarchical phase nesting, thread-safety, runtime-disabled no-ops, and
// validity of the emitted JSON (snapshot + Chrome trace), checked with the
// minimal JSON parser below.

#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sat/solver.hpp"
#include "util/jsonw.hpp"

namespace tel = eco::telemetry;

namespace {

// ---- minimal JSON parser (validation only) -------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::kNull;
      return literal("null");
    }
    return parse_number(out);
  }
  bool parse_string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          out += '?';  // decoded value irrelevant for these tests
          pos_ += 6;
          continue;
        }
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: return false;
        }
        pos_ += 2;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool parse_number(JsonValue& out) {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    out.kind = JsonValue::kNumber;
    out.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }
  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tel::reset();
    tel::set_enabled(true);
  }
  void TearDown() override {
    tel::set_enabled(false);
    tel::reset();
  }
};

}  // namespace

TEST_F(TelemetryTest, CountersAccumulate) {
  EXPECT_EQ(tel::counter_value("t.c"), 0u);
  tel::counter_add("t.c");
  tel::counter_add("t.c", 41);
  EXPECT_EQ(tel::counter_value("t.c"), 42u);
  tel::reset();
  EXPECT_EQ(tel::counter_value("t.c"), 0u);
}

TEST_F(TelemetryTest, GaugesSetAndMax) {
  tel::gauge_set("t.g", 7);
  tel::gauge_set("t.g", 3);
  EXPECT_EQ(tel::gauge_value("t.g"), 3);
  tel::gauge_max("t.m", 5);
  tel::gauge_max("t.m", 2);
  tel::gauge_max("t.m", 9);
  EXPECT_EQ(tel::gauge_value("t.m"), 9);
}

TEST_F(TelemetryTest, TimersAccumulateCountAndSeconds) {
  tel::timer_add("t.t", 0.5);
  tel::timer_add("t.t", 0.25);
  const tel::TimerStat t = tel::timer_value("t.t");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.seconds, 0.75);
}

TEST_F(TelemetryTest, ScopedTimerRecords) {
  {
    tel::ScopedTimer timer("t.scoped");
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  const tel::TimerStat t = tel::timer_value("t.scoped");
  EXPECT_EQ(t.count, 1u);
  EXPECT_GT(t.seconds, 0.0);
}

TEST_F(TelemetryTest, PhasesNestHierarchically) {
  {
    tel::ScopedPhase outer("outer");
    {
      tel::ScopedPhase inner("inner");
      tel::ScopedTimer spin("t.spin");
      volatile int sink = 0;
      for (int i = 0; i < 100000; ++i) sink = sink + i;
    }
    { tel::ScopedPhase inner2("inner"); }
  }
  EXPECT_EQ(tel::timer_value("outer").count, 1u);
  EXPECT_EQ(tel::timer_value("outer/inner").count, 2u);
  EXPECT_EQ(tel::timer_value("inner").count, 0u);  // only the joined path
  // The outer phase's time covers the inner phases'.
  EXPECT_GE(tel::timer_value("outer").seconds, tel::timer_value("outer/inner").seconds);
}

TEST_F(TelemetryTest, RuntimeDisabledIsNoop) {
  tel::set_enabled(false);
  tel::counter_add("t.off");
  tel::gauge_set("t.off.g", 1);
  tel::timer_add("t.off.t", 1.0);
  { tel::ScopedPhase p("t.off.phase"); }
  EXPECT_EQ(tel::counter_value("t.off"), 0u);
  EXPECT_EQ(tel::gauge_value("t.off.g"), 0);
  EXPECT_EQ(tel::timer_value("t.off.t").count, 0u);
  EXPECT_EQ(tel::timer_value("t.off.phase").count, 0u);
  const tel::Snapshot s = tel::snapshot();
  EXPECT_TRUE(s.counters.empty());
  EXPECT_TRUE(s.timers.empty());
}

TEST_F(TelemetryTest, PhaseOpenAcrossDisableStillClosesSafely) {
  auto phase = std::make_unique<tel::ScopedPhase>("t.toggle");
  tel::set_enabled(false);
  phase.reset();  // must not crash; slice recorded from the active ctor
  EXPECT_EQ(tel::timer_value("t.toggle").count, 1u);
}

TEST_F(TelemetryTest, ThreadSafetySmoke) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < kIters; ++j) {
        tel::counter_add("t.mt");
        if ((j & 1023) == 0) {
          tel::ScopedPhase p("mt_phase");
          tel::gauge_max("t.mt.max", j);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tel::counter_value("t.mt"), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(tel::gauge_value("t.mt.max"), 9216);
  EXPECT_EQ(tel::timer_value("mt_phase").count, static_cast<uint64_t>(kThreads) * 10);
}

TEST_F(TelemetryTest, SolverStatsRollIntoTotals) {
  const tel::SolverTotals before = tel::solver_totals();
  {
    eco::sat::Solver solver;
    const eco::sat::Var a = solver.new_var();
    const eco::sat::Var b = solver.new_var();
    solver.add_clause({eco::sat::mk_lit(a), eco::sat::mk_lit(b)});
    solver.add_clause({~eco::sat::mk_lit(a), eco::sat::mk_lit(b)});
    EXPECT_TRUE(solver.solve().is_true());
  }  // destructor publishes the stats
  const tel::SolverTotals after = tel::solver_totals();
  EXPECT_EQ(after.solvers, before.solvers + 1);
  EXPECT_EQ(after.solves, before.solves + 1);
}

TEST_F(TelemetryTest, ScopedSolverCaptureCreditsInnermostAccumulator) {
  // A capture receives the totals of every solver destroyed in its scope on
  // this thread; an inner capture shadows the outer one (a solver belongs
  // to exactly one run), and solvers destroyed outside any capture are
  // credited to nobody.
  auto burn_one_solver = [] {
    eco::sat::Solver solver;
    const eco::sat::Var a = solver.new_var();
    solver.add_clause({eco::sat::mk_lit(a)});
    EXPECT_TRUE(solver.solve().is_true());
  };

  tel::SolverTotalsAccumulator outer, inner;
  burn_one_solver();  // before any capture: untracked
  {
    tel::ScopedSolverCapture outer_capture(outer);
    burn_one_solver();
    {
      tel::ScopedSolverCapture inner_capture(inner);
      burn_one_solver();
      burn_one_solver();
    }
    burn_one_solver();
  }
  burn_one_solver();  // after the capture closed: untracked

  EXPECT_EQ(outer.totals().solvers, 2u);
  EXPECT_EQ(outer.totals().solves, 2u);
  EXPECT_EQ(inner.totals().solvers, 2u);
  EXPECT_EQ(inner.totals().solves, 2u);
}

TEST_F(TelemetryTest, SnapshotJsonRoundTrips) {
  tel::counter_add("alpha", 3);
  tel::counter_add("needs \"escaping\"\n", 1);
  tel::gauge_set("g1", -5);
  tel::timer_add("engine/window", 0.125);
  { tel::ScopedPhase p("solo"); }

  const std::string text = tel::snapshot_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).parse(root)) << text;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->string, "ecopatch-telemetry-v1");

  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("alpha"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("alpha")->number, 3.0);
  EXPECT_NE(counters->find("needs \"escaping\"\n"), nullptr);

  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("g1")->number, -5.0);

  const JsonValue* timers = root.find("timers");
  ASSERT_NE(timers, nullptr);
  const JsonValue* window = timers->find("engine/window");
  ASSERT_NE(window, nullptr);
  EXPECT_DOUBLE_EQ(window->find("seconds")->number, 0.125);
  EXPECT_DOUBLE_EQ(window->find("count")->number, 1.0);
  EXPECT_NE(timers->find("solo"), nullptr);

  const JsonValue* sat = root.find("sat");
  ASSERT_NE(sat, nullptr);
  EXPECT_NE(sat->find("conflicts"), nullptr);
  EXPECT_NE(sat->find("propagations"), nullptr);
  // Incremental fast-path counters (schema-additive in v1).
  EXPECT_NE(sat->find("prefix_reused_levels"), nullptr);
  EXPECT_NE(sat->find("propagations_saved"), nullptr);
  EXPECT_NE(sat->find("restarts_blocked"), nullptr);
  EXPECT_NE(sat->find("learnts_core"), nullptr);
  EXPECT_NE(sat->find("learnts_tier2"), nullptr);
  EXPECT_NE(sat->find("learnts_local"), nullptr);
}

TEST_F(TelemetryTest, TraceJsonRoundTripsAsCatapultFormat) {
  {
    tel::ScopedPhase outer("engine");
    tel::ScopedPhase inner("window");
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  const std::string text = tel::trace_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).parse(root)) << text;
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_EQ(events->array.size(), 2u);
  for (const JsonValue& e : events->array) {
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_GE(e.find("ts")->number, 0.0);
    EXPECT_GE(e.find("dur")->number, 0.0);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  // Inner slice closes first, so it is recorded first and nests inside.
  const JsonValue& inner = events->array[0];
  const JsonValue& outer = events->array[1];
  EXPECT_EQ(inner.find("name")->string, "window");
  EXPECT_EQ(outer.find("name")->string, "engine");
  EXPECT_LE(outer.find("ts")->number, inner.find("ts")->number);
  EXPECT_GE(outer.find("ts")->number + outer.find("dur")->number,
            inner.find("ts")->number + inner.find("dur")->number);
}

TEST_F(TelemetryTest, TraceCapacityBoundsMemory) {
  tel::set_trace_capacity(4);
  for (int i = 0; i < 10; ++i) tel::ScopedPhase p("spam");
  const tel::Snapshot s = tel::snapshot();
  EXPECT_EQ(s.trace_events, 4u);
  EXPECT_EQ(s.dropped_trace_events, 6u);
  tel::set_trace_capacity(1u << 20);
}

TEST_F(TelemetryTest, TraceCapacityZeroDisablesTracingWithoutDropCounting) {
  // Capacity 0 means "tracing off", not "drop everything": no events are
  // retained AND the dropped counter stays put, so a capacity-0 snapshot
  // does not read as data loss. Timers/phase paths keep working.
  tel::set_trace_capacity(0);
  for (int i = 0; i < 10; ++i) tel::ScopedPhase p("spam0");
  const tel::Snapshot s = tel::snapshot();
  EXPECT_EQ(s.trace_events, 0u);
  EXPECT_EQ(s.dropped_trace_events, 0u);
  EXPECT_EQ(tel::timer_value("spam0").count, 10u);
  tel::set_trace_capacity(1u << 20);
}

TEST_F(TelemetryTest, ShrinkingTraceCapacityTrimsOldestAndCountsThemDropped) {
  tel::set_trace_capacity(8);
  for (int i = 0; i < 8; ++i) tel::ScopedPhase p("trim");
  tel::set_trace_capacity(3);
  const tel::Snapshot s = tel::snapshot();
  EXPECT_EQ(s.trace_events, 3u);
  EXPECT_EQ(s.dropped_trace_events, 5u);
  tel::set_trace_capacity(1u << 20);
}

TEST_F(TelemetryTest, CurrentPhasePathReflectsOpenScopes) {
  EXPECT_EQ(tel::current_phase_path(), "");
  tel::ScopedPhase outer("engine");
  EXPECT_EQ(tel::current_phase_path(), "engine");
  {
    tel::ScopedPhase inner("verify");
    EXPECT_EQ(tel::current_phase_path(), "engine/verify");
  }
  EXPECT_EQ(tel::current_phase_path(), "engine");
}

TEST_F(TelemetryTest, JsonWriterEscapesAndNests) {
  eco::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd");
  w.kv("i", -12);
  w.kv("u", 12u);
  w.kv("d", 1.5);
  w.kv("b", true);
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.begin_object();
  w.kv("k", 3);
  w.end_object();
  w.end_array();
  w.end_object();
  JsonValue root;
  ASSERT_TRUE(JsonParser(w.str()).parse(root)) << w.str();
  EXPECT_EQ(root.find("s")->string, "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(root.find("i")->number, -12.0);
  EXPECT_TRUE(root.find("b")->boolean);
  ASSERT_EQ(root.find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(root.find("arr")->array[2].find("k")->number, 3.0);
}

// Declared in test_telemetry_disabled.cpp, a TU compiled with
// ECO_TELEMETRY=0: returns the value of counter "disabled.count" after
// running the compiled-out instrumentation macros.
uint64_t run_compiled_out_instrumentation();

TEST_F(TelemetryTest, CompileTimeDisabledMacrosAreZeroCost) {
  EXPECT_EQ(run_compiled_out_instrumentation(), 0u);
  EXPECT_EQ(tel::timer_value("disabled.phase").count, 0u);
}
