#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace eco::sat {
namespace {

/// Brute-force satisfiability over <= 24 variables, for cross-checking.
bool brute_force_sat(const Cnf& cnf, const LitVec& assumptions = {}) {
  EXPECT_LE(cnf.num_vars, 24);
  for (uint32_t m = 0; m < (1u << cnf.num_vars); ++m) {
    auto lit_true = [&](Lit l) { return (((m >> l.var()) & 1u) != 0) != l.sign(); };
    bool ok = std::all_of(assumptions.begin(), assumptions.end(), lit_true);
    for (const auto& clause : cnf.clauses) {
      if (!ok) break;
      ok = std::any_of(clause.begin(), clause.end(), lit_true);
    }
    if (ok) return true;
  }
  return false;
}

/// Checks that the solver's model satisfies every clause of \p cnf.
void expect_model_satisfies(const Solver& s, const Cnf& cnf) {
  for (const auto& clause : cnf.clauses) {
    const bool sat = std::any_of(clause.begin(), clause.end(),
                                 [&](Lit l) { return s.model_value(l); });
    EXPECT_TRUE(sat) << "model violates a clause";
  }
}

Cnf random_3sat(Rng& rng, int num_vars, int num_clauses) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    LitVec clause;
    for (int k = 0; k < 3; ++k)
      clause.push_back(mk_lit(static_cast<Var>(rng.below(static_cast<uint64_t>(num_vars))),
                              rng.chance(1, 2)));
    cnf.clauses.push_back(clause);
  }
  return cnf;
}

/// Pigeonhole principle: n+1 pigeons in n holes, classic hard UNSAT family.
Cnf pigeonhole(int holes) {
  const int pigeons = holes + 1;
  Cnf cnf;
  cnf.num_vars = pigeons * holes;
  auto var_of = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    LitVec clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(var_of(p, h)));
    cnf.clauses.push_back(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.clauses.push_back({mk_lit(var_of(p1, h), true), mk_lit(var_of(p2, h), true)});
  return cnf;
}

TEST(Lit, PackingRoundTrip) {
  const Lit a = mk_lit(5);
  EXPECT_EQ(a.var(), 5);
  EXPECT_FALSE(a.sign());
  const Lit na = ~a;
  EXPECT_EQ(na.var(), 5);
  EXPECT_TRUE(na.sign());
  EXPECT_EQ(~na, a);
  EXPECT_EQ(a ^ true, na);
  EXPECT_EQ(a ^ false, a);
}

TEST(LBool, NegationEncoding) {
  EXPECT_TRUE((kTrue ^ true) == kFalse);
  EXPECT_TRUE((kFalse ^ true) == kTrue);
  EXPECT_TRUE((kUndef ^ true) == kUndef);
  EXPECT_TRUE((kTrue ^ false) == kTrue);
}

TEST(Solver, EmptyProblemIsSat) {
  Solver s;
  EXPECT_TRUE(s.solve().is_true());
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_unit(mk_lit(v)));
  EXPECT_TRUE(s.solve().is_true());
  EXPECT_TRUE(s.model_value(v));
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_unit(mk_lit(v)));
  EXPECT_FALSE(s.add_unit(mk_lit(v, true)));
  EXPECT_FALSE(s.okay());
  EXPECT_TRUE(s.solve().is_false());
}

TEST(Solver, TautologyClauseIgnored) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(v), mk_lit(v, true)}));
  EXPECT_TRUE(s.solve().is_true());
}

TEST(Solver, DuplicateLiteralsHandled) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(a), mk_lit(a), mk_lit(b)}));
  EXPECT_TRUE(s.add_unit(mk_lit(a, true)));
  EXPECT_TRUE(s.solve().is_true());
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, ImplicationChainPropagates) {
  Solver s;
  constexpr int kN = 50;
  std::vector<Var> vars;
  for (int i = 0; i < kN; ++i) vars.push_back(s.new_var());
  for (int i = 0; i + 1 < kN; ++i)
    ASSERT_TRUE(s.add_binary(mk_lit(vars[static_cast<size_t>(i)], true),
                             mk_lit(vars[static_cast<size_t>(i + 1)])));
  ASSERT_TRUE(s.add_unit(mk_lit(vars[0])));
  ASSERT_TRUE(s.solve().is_true());
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(s.model_value(vars[static_cast<size_t>(i)]));
}

TEST(Solver, XorChainSatAndUnsat) {
  // x0 xor x1 xor ... xor x(n-1) = 1 encoded pairwise; then force parity 0.
  Solver s;
  constexpr int kN = 8;
  std::vector<Var> x;
  for (int i = 0; i < kN; ++i) x.push_back(s.new_var());
  std::vector<Var> p;  // prefix parity
  p.push_back(x[0]);
  for (int i = 1; i < kN; ++i) {
    const Var q = s.new_var();
    const Lit a = mk_lit(p.back()), b = mk_lit(x[static_cast<size_t>(i)]), o = mk_lit(q);
    // q = a xor b
    ASSERT_TRUE(s.add_ternary(~o, a, b));
    ASSERT_TRUE(s.add_ternary(~o, ~a, ~b));
    ASSERT_TRUE(s.add_ternary(o, ~a, b));
    ASSERT_TRUE(s.add_ternary(o, a, ~b));
    p.push_back(q);
  }
  ASSERT_TRUE(s.add_unit(mk_lit(p.back())));
  EXPECT_TRUE(s.solve().is_true());
  int ones = 0;
  for (int i = 0; i < kN; ++i) ones += s.model_value(x[static_cast<size_t>(i)]);
  EXPECT_EQ(ones % 2, 1);
}

TEST(Solver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    const Cnf cnf = pigeonhole(holes);
    ASSERT_TRUE(load_into(s, cnf));
    EXPECT_TRUE(s.solve().is_false()) << "PHP(" << holes << ") must be UNSAT";
  }
}

TEST(Solver, AssumptionsSelectBranch) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(mk_lit(a), mk_lit(b)));
  EXPECT_TRUE(s.solve({mk_lit(a, true)}).is_true());
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.solve({mk_lit(b, true)}).is_true());
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.solve({mk_lit(a, true), mk_lit(b, true)}).is_false());
}

TEST(Solver, CoreContainsOnlyRelevantAssumptions) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var(), d = s.new_var();
  // a & b -> contradiction; c, d irrelevant.
  ASSERT_TRUE(s.add_binary(mk_lit(a, true), mk_lit(b, true)));
  const LitVec assumptions = {mk_lit(c), mk_lit(d), mk_lit(a), mk_lit(b)};
  ASSERT_TRUE(s.solve(assumptions).is_false());
  const LitVec& core = s.core();
  EXPECT_LE(core.size(), 2u);
  for (const Lit l : core) {
    EXPECT_TRUE(l == mk_lit(a) || l == mk_lit(b));
  }
  EXPECT_TRUE(s.in_core(mk_lit(a)));
  EXPECT_TRUE(s.in_core(mk_lit(b)));
  EXPECT_FALSE(s.in_core(mk_lit(c)));
  EXPECT_FALSE(s.in_core(mk_lit(d)));
}

TEST(Solver, CoreIsEmptyWhenUnsatWithoutAssumptions) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_unit(mk_lit(a)));
  s.add_unit(mk_lit(a, true));
  const Var b = s.new_var();
  EXPECT_TRUE(s.solve({mk_lit(b)}).is_false());
  EXPECT_TRUE(s.core().empty());
}

TEST(Solver, CoreUnderPropagatedAssumption) {
  // Assumption falsified by unit propagation from earlier assumptions.
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(mk_lit(a, true), mk_lit(b, true)));  // a -> !b
  ASSERT_TRUE(s.solve({mk_lit(a), mk_lit(b)}).is_false());
  EXPECT_GE(s.core().size(), 1u);
  for (const Lit l : s.core()) EXPECT_TRUE(l == mk_lit(a) || l == mk_lit(b));
}

TEST(Solver, IncrementalAcrossSolves) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(mk_lit(a), mk_lit(b)));
  EXPECT_TRUE(s.solve().is_true());
  ASSERT_TRUE(s.add_unit(mk_lit(a, true)));
  EXPECT_TRUE(s.solve().is_true());
  EXPECT_TRUE(s.model_value(b));
  ASSERT_TRUE(s.add_unit(mk_lit(b, true)) == false || s.solve().is_false());
  EXPECT_TRUE(s.solve().is_false());
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  Solver s;
  const Cnf cnf = pigeonhole(8);  // hard enough to exceed a tiny budget
  ASSERT_TRUE(load_into(s, cnf));
  s.set_conflict_budget(5);
  EXPECT_TRUE(s.solve().is_undef());
  s.clear_budgets();
  EXPECT_TRUE(s.solve().is_false());
}

TEST(Solver, FixedValueAtTopLevel) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_unit(mk_lit(a, true)));
  EXPECT_TRUE(s.fixed_value(a).is_false());
  EXPECT_TRUE(s.fixed_value(b).is_undef());
}

TEST(Solver, PolarityHintRespectedOnFreeVar) {
  Solver s;
  const Var a = s.new_var();
  s.set_polarity(a, /*negated_first=*/true);
  ASSERT_TRUE(s.solve().is_true());
  EXPECT_FALSE(s.model_value(a));
  Solver s2;
  const Var c = s2.new_var();
  s2.set_polarity(c, /*negated_first=*/false);
  ASSERT_TRUE(s2.solve().is_true());
  EXPECT_TRUE(s2.model_value(c));
}

// Property: solver verdict matches brute force on random 3-SAT, and SAT
// models actually satisfy the formula.
class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 30; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.below(9));
    const int num_clauses = static_cast<int>(rng.below(static_cast<uint64_t>(6 * num_vars))) + 1;
    const Cnf cnf = random_3sat(rng, num_vars, num_clauses);
    Solver s;
    const bool load_ok = load_into(s, cnf);
    const LBool verdict = load_ok ? s.solve() : kFalse;
    const bool expected = brute_force_sat(cnf);
    EXPECT_EQ(verdict.is_true(), expected);
    if (verdict.is_true()) expect_model_satisfies(s, cnf);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 10));

// Property: whenever solve under assumptions is UNSAT, re-solving with only
// the core assumptions is still UNSAT.
class RandomCoreTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCoreTest, CoreIsSufficient) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  for (int iter = 0; iter < 20; ++iter) {
    const int num_vars = 6 + static_cast<int>(rng.below(8));
    const Cnf cnf = random_3sat(rng, num_vars, 3 * num_vars);
    Solver s;
    if (!load_into(s, cnf)) continue;
    LitVec assumptions;
    for (Var v = 0; v < num_vars; ++v)
      if (rng.chance(1, 2)) assumptions.push_back(mk_lit(v, rng.chance(1, 2)));
    if (!s.solve(assumptions).is_false()) continue;
    const LitVec core = s.core();
    // Core is a subset of the assumptions.
    for (const Lit l : core)
      EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l), assumptions.end());
    // Core alone is still UNSAT (checked with a fresh solver + brute force).
    Solver s2;
    ASSERT_TRUE(load_into(s2, cnf));
    EXPECT_TRUE(s2.solve(core).is_false());
    EXPECT_FALSE(brute_force_sat(cnf, core));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoreTest, ::testing::Range(0, 8));

TEST(Solver, ManyVariablesStress) {
  // A chain of equivalences x0 = x1 = ... = xn with a final inversion.
  Solver s;
  constexpr int kN = 2000;
  std::vector<Var> x;
  for (int i = 0; i < kN; ++i) x.push_back(s.new_var());
  for (int i = 0; i + 1 < kN; ++i) {
    ASSERT_TRUE(s.add_binary(mk_lit(x[static_cast<size_t>(i)], true),
                             mk_lit(x[static_cast<size_t>(i + 1)])));
    ASSERT_TRUE(s.add_binary(mk_lit(x[static_cast<size_t>(i)]),
                             mk_lit(x[static_cast<size_t>(i + 1)], true)));
  }
  EXPECT_TRUE(s.solve({mk_lit(x[0])}).is_true());
  EXPECT_TRUE(s.model_value(x[kN - 1]));
  EXPECT_TRUE(s.solve({mk_lit(x[0]), mk_lit(x[kN - 1], true)}).is_false());
}

TEST(Solver, LearntDatabaseReductionKeepsSoundness) {
  // Run a hard instance with an aggressive maintenance schedule so the
  // three-tier machinery (local reductions, tier2 demotion, GC) all fire,
  // then confirm queries still behave.
  SolverOptions opts;
  opts.local_reduce_interval = 300;
  opts.tier2_shrink_interval = 200;
  opts.tier2_unused_demote = 400;
  Solver s(opts);
  const Cnf cnf = pigeonhole(7);
  ASSERT_TRUE(load_into(s, cnf));
  EXPECT_TRUE(s.solve().is_false());
  EXPECT_GT(s.stats().db_reductions, 0u);
  EXPECT_GT(s.stats().learnts_core + s.stats().learnts_tier2 + s.stats().learnts_local, 0u);
  // An assumption-free UNSAT latches the solver: the formula itself is
  // contradictory, so further clauses are rejected and solves stay UNSAT.
  EXPECT_FALSE(s.okay());
  const Var extra = s.new_var();
  EXPECT_FALSE(s.add_unit(mk_lit(extra)));
  EXPECT_TRUE(s.solve().is_false());  // still UNSAT overall
}

// The dedicated binary-clause watch lists (solver.hpp, two-tier scheme)
// change the propagation order and keep reason clauses un-normalized until
// conflict analysis reads them. These tests drive exactly those paths:
// binary-heavy CNFs, conflicts inside the binary pass, and cores derived
// from chains of binary reasons.

/// Random CNF dominated by binary clauses (with a few units and ternaries),
/// the Tseitin shape the two-tier watchers are built for.
Cnf random_binary_heavy(Rng& rng, int num_vars, int num_clauses) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    const uint64_t shape = rng.below(10);
    const int width = shape < 7 ? 2 : (shape < 9 ? 3 : 1);
    LitVec clause;
    for (int k = 0; k < width; ++k)
      clause.push_back(mk_lit(static_cast<Var>(rng.below(static_cast<uint64_t>(num_vars))),
                              rng.chance(1, 2)));
    cnf.clauses.push_back(clause);
  }
  return cnf;
}

class BinaryHeavyCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(BinaryHeavyCnfTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151 + 3);
  for (int iter = 0; iter < 40; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.below(10));
    const int num_clauses = 1 + static_cast<int>(rng.below(static_cast<uint64_t>(5 * num_vars)));
    const Cnf cnf = random_binary_heavy(rng, num_vars, num_clauses);
    Solver s;
    const bool load_ok = load_into(s, cnf);
    const LBool verdict = load_ok ? s.solve() : kFalse;
    EXPECT_EQ(verdict.is_true(), brute_force_sat(cnf));
    if (verdict.is_true()) expect_model_satisfies(s, cnf);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryHeavyCnfTest, ::testing::Range(0, 10));

TEST_P(BinaryHeavyCnfTest, CoresUnderAssumptionsAreSound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2887 + 11);
  for (int iter = 0; iter < 25; ++iter) {
    const int num_vars = 5 + static_cast<int>(rng.below(9));
    const Cnf cnf = random_binary_heavy(rng, num_vars, 4 * num_vars);
    Solver s;
    if (!load_into(s, cnf)) continue;
    LitVec assumptions;
    for (Var v = 0; v < num_vars; ++v)
      if (rng.chance(1, 2)) assumptions.push_back(mk_lit(v, rng.chance(1, 2)));
    if (!s.solve(assumptions).is_false()) continue;
    const LitVec core = s.core();
    for (const Lit l : core) {
      EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l), assumptions.end());
      EXPECT_TRUE(s.in_core(l));
    }
    EXPECT_FALSE(brute_force_sat(cnf, core));
  }
}

TEST(Solver, BinaryImplicationChainCore) {
  // x0 -> x1 -> ... -> x19 entirely through binary clauses, and a kill
  // switch t -> ~x19. Assuming {x0, t} forces analyze_final to walk the
  // whole chain of *binary* reason clauses (the lazily-normalized
  // reason_view path) at a nonzero decision level; the core must name
  // exactly the two assumptions, not the spectator.
  Solver s;
  constexpr int kN = 20;
  std::vector<Var> x;
  for (int i = 0; i < kN; ++i) x.push_back(s.new_var());
  for (int i = 0; i + 1 < kN; ++i)
    ASSERT_TRUE(s.add_binary(mk_lit(x[static_cast<size_t>(i)], true),
                             mk_lit(x[static_cast<size_t>(i + 1)])));
  const Var t = s.new_var();
  const Var spectator = s.new_var();
  ASSERT_TRUE(s.add_binary(mk_lit(t, true), mk_lit(x[kN - 1], true)));

  ASSERT_TRUE(s.solve({mk_lit(x[0]), mk_lit(spectator), mk_lit(t)}).is_false());
  EXPECT_TRUE(s.in_core(mk_lit(x[0])));
  EXPECT_TRUE(s.in_core(mk_lit(t)));
  EXPECT_FALSE(s.in_core(mk_lit(spectator)));
  EXPECT_EQ(s.core().size(), 2u);

  // Assuming from the middle of the chain behaves identically.
  ASSERT_TRUE(s.solve({mk_lit(spectator), mk_lit(x[kN / 2]), mk_lit(t)}).is_false());
  EXPECT_TRUE(s.in_core(mk_lit(x[kN / 2])));
  EXPECT_TRUE(s.in_core(mk_lit(t)));
  EXPECT_EQ(s.core().size(), 2u);

  // Dropping either core member makes the instance satisfiable again.
  ASSERT_TRUE(s.solve({mk_lit(x[0]), mk_lit(spectator)}).is_true());
  EXPECT_TRUE(s.model_value(x[kN - 1]));
  ASSERT_TRUE(s.solve({mk_lit(spectator), mk_lit(t)}).is_true());
  EXPECT_FALSE(s.model_value(x[0]));
}

TEST(Solver, BinaryConflictMidPropagation) {
  // A diamond a -> b, a -> ~c, b -> c: assuming a conflicts inside the
  // binary watch pass itself (both polarities of c forced by binaries).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_binary(mk_lit(a, true), mk_lit(b)));
  ASSERT_TRUE(s.add_binary(mk_lit(a, true), mk_lit(c, true)));
  ASSERT_TRUE(s.add_binary(mk_lit(b, true), mk_lit(c)));
  ASSERT_TRUE(s.solve({mk_lit(a)}).is_false());
  ASSERT_EQ(s.core().size(), 1u);
  EXPECT_EQ(s.core()[0], mk_lit(a));
  EXPECT_TRUE(s.solve({mk_lit(a, true)}).is_true());
  EXPECT_TRUE(s.solve().is_true());
}

TEST(Dimacs, ParseAndWriteRoundTrip) {
  const std::string text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
  const Cnf cnf = parse_dimacs_string(text);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], mk_lit(0));
  EXPECT_EQ(cnf.clauses[0][1], mk_lit(1, true));
  std::ostringstream out;
  write_dimacs(out, cnf);
  const Cnf again = parse_dimacs_string(out.str());
  EXPECT_EQ(again.num_vars, cnf.num_vars);
  EXPECT_EQ(again.clauses, cnf.clauses);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs_string("p cnf x y\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 3 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
}

}  // namespace
}  // namespace eco::sat
