#include <gtest/gtest.h>

#include "sop/isop.hpp"
#include "util/rng.hpp"

namespace eco::sop {
namespace {

TruthTable random_table(uint32_t num_vars, Rng& rng) {
  TruthTable t = TruthTable::zeros(num_vars);
  for (auto& w : t.words) w = rng.next();
  t.words[0] &= num_vars >= 6 ? ~0ULL : (1ULL << (1u << num_vars)) - 1;
  return t;
}

TEST(TruthTable, BasicOps) {
  const TruthTable zero = TruthTable::zeros(3);
  const TruthTable one = TruthTable::ones(3);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(one.is_zero());
  EXPECT_EQ(~one, zero);
  EXPECT_EQ(one & zero, zero);
  EXPECT_EQ(one | zero, one);
  const TruthTable x1 = TruthTable::variable(3, 1);
  for (uint32_t m = 0; m < 8; ++m) EXPECT_EQ(x1.get(m), ((m >> 1) & 1u) != 0);
}

TEST(TruthTable, CofactorRemovesDependence) {
  const TruthTable x0 = TruthTable::variable(3, 0);
  const TruthTable x2 = TruthTable::variable(3, 2);
  const TruthTable f = x0 & x2;
  const TruthTable f1 = f.cofactor(0, true);
  EXPECT_EQ(f1, x2);
  const TruthTable f0 = f.cofactor(0, false);
  EXPECT_TRUE(f0.is_zero());
}

TEST(Isop, ConstantsAndLiterals) {
  EXPECT_TRUE(isop(TruthTable::zeros(4)).cubes.empty());
  const Cover taut = isop(TruthTable::ones(4));
  ASSERT_EQ(taut.cubes.size(), 1u);
  EXPECT_TRUE(taut.cubes[0].empty());
  const Cover lit = isop(TruthTable::variable(4, 2));
  ASSERT_EQ(lit.cubes.size(), 1u);
  EXPECT_EQ(lit.cubes[0].lits(), (std::vector<Lit>{lit_pos(2)}));
}

TEST(Isop, ExactCoverOfCompletelySpecifiedFunctions) {
  Rng rng(123);
  for (uint32_t n = 2; n <= 6; ++n) {
    for (int iter = 0; iter < 10; ++iter) {
      const TruthTable f = random_table(n, rng);
      const Cover cover = isop(f);
      EXPECT_EQ(cover_to_truth_table(cover, n), f) << "n=" << n << " iter=" << iter;
    }
  }
}

TEST(Isop, RespectsDontCares) {
  Rng rng(321);
  for (int iter = 0; iter < 20; ++iter) {
    const uint32_t n = 4 + static_cast<uint32_t>(rng.below(3));
    TruthTable on = random_table(n, rng);
    TruthTable dc = random_table(n, rng);
    on = on & ~dc;  // disjoint on/dc
    const Cover cover = isop(on, dc);
    const TruthTable result = cover_to_truth_table(cover, n);
    // on ⊆ result ⊆ on | dc.
    EXPECT_TRUE((on & ~result).is_zero()) << "uncovered on-set minterm";
    EXPECT_TRUE((result & ~(on | dc)).is_zero()) << "off-set minterm covered";
  }
}

TEST(Isop, DontCaresReduceCubeCount) {
  // A scattered on-set with generous don't cares should need fewer cubes
  // than without them.
  Rng rng(55);
  int improved = 0;
  for (int iter = 0; iter < 10; ++iter) {
    const uint32_t n = 6;
    TruthTable on = random_table(n, rng) & random_table(n, rng);  // sparse
    TruthTable dc = random_table(n, rng) | random_table(n, rng);  // dense
    dc = dc & ~on;
    const size_t with_dc = isop(on, dc).cubes.size();
    const size_t without = isop(on).cubes.size();
    EXPECT_LE(with_dc, without);
    improved += with_dc < without;
  }
  EXPECT_GT(improved, 5);
}

TEST(Isop, IrredundantOnCompletelySpecified) {
  Rng rng(777);
  for (int iter = 0; iter < 10; ++iter) {
    const uint32_t n = 5;
    const TruthTable f = random_table(n, rng);
    Cover cover = isop(f);
    // Dropping any single cube must lose an on-set minterm.
    for (size_t i = 0; i < cover.cubes.size(); ++i) {
      Cover reduced;
      reduced.num_vars = cover.num_vars;
      for (size_t j = 0; j < cover.cubes.size(); ++j)
        if (j != i) reduced.cubes.push_back(cover.cubes[j]);
      EXPECT_NE(cover_to_truth_table(reduced, n), f)
          << "cube " << i << " is redundant";
    }
  }
}

TEST(Isop, CubesArePrime) {
  // Expanding any cube by removing one literal must intersect the off-set.
  Rng rng(999);
  for (int iter = 0; iter < 8; ++iter) {
    const uint32_t n = 5;
    const TruthTable f = random_table(n, rng);
    const Cover cover = isop(f);
    for (const auto& cube : cover.cubes) {
      for (const Lit removed : cube.lits()) {
        std::vector<Lit> lits;
        for (const Lit l : cube.lits())
          if (l != removed) lits.push_back(l);
        Cover expanded;
        expanded.num_vars = n;
        expanded.cubes.push_back(Cube(std::move(lits)));
        const TruthTable etab = cover_to_truth_table(expanded, n);
        EXPECT_FALSE((etab & ~f).is_zero())
            << "cube " << cube.to_string() << " is not prime";
      }
    }
  }
}

}  // namespace
}  // namespace eco::sop
