#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "benchgen/suite.hpp"
#include "eco/engine.hpp"
#include "net/aignet.hpp"
#include "net/elaborate.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"

namespace eco::core {
namespace {

/// End-to-end on real suite units (the small ones, to keep the test quick):
/// every configuration must produce a verified patch; cost-aware configs
/// must not exceed the baseline's cost; and the reported patch module must
/// be consistent with the reported supports.
class SuiteIntegration : public ::testing::TestWithParam<int> {};

TEST_P(SuiteIntegration, AllConfigurationsPatchAndVerify) {
  const benchgen::EcoUnit unit = benchgen::make_unit(GetParam());
  const EcoProblem problem = make_problem(unit.impl, unit.spec, unit.weights);

  int64_t baseline_cost = -1;
  for (const Algorithm algorithm :
       {Algorithm::kBaseline, Algorithm::kMinimize, Algorithm::kSatPruneCegarMin}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.time_budget = 20;
    options.conflict_budget = 200000;
    const EcoOutcome outcome = run_eco(problem, options);
    ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched)
        << unit.name << " algorithm " << static_cast<int>(algorithm);
    EXPECT_TRUE(outcome.verified);
    EXPECT_EQ(outcome.targets.size(), problem.num_targets());
    EXPECT_EQ(outcome.patch_module.num_pos(), problem.num_targets());
    // Patch module inputs must match the union of reported supports.
    std::set<std::string> support_names;
    for (const auto& t : outcome.targets)
      support_names.insert(t.support.begin(), t.support.end());
    EXPECT_EQ(outcome.patch_module.num_pis(), support_names.size());
    if (algorithm == Algorithm::kBaseline) baseline_cost = outcome.total_cost;
    if (algorithm == Algorithm::kMinimize) EXPECT_LE(outcome.total_cost, baseline_cost);
  }
}

// The small/fast units only.
INSTANTIATE_TEST_SUITE_P(Units, SuiteIntegration, ::testing::Values(0, 1, 3, 12, 16));

TEST(SuiteIntegration, ContestFileRoundTrip) {
  // Serialize a unit to contest files and back; the engine result on the
  // round-tripped instance must still verify.
  const benchgen::EcoUnit unit = benchgen::make_unit(0);
  std::ostringstream impl_text, spec_text, weight_text;
  net::write_verilog(impl_text, unit.impl);
  net::write_verilog(spec_text, unit.spec);
  net::write_weights(weight_text, unit.weights);

  const net::Network impl = net::parse_verilog_string(impl_text.str());
  const net::Network spec = net::parse_verilog_string(spec_text.str());
  const net::WeightMap weights = net::parse_weights_string(weight_text.str());

  EngineOptions options;
  options.time_budget = 20;
  const EcoOutcome outcome = run_eco(impl, spec, weights, options);
  ASSERT_EQ(outcome.status, EcoOutcome::Status::kPatched);
  EXPECT_TRUE(outcome.verified);

  // The patch module itself survives a Verilog round trip.
  std::ostringstream patch_text;
  net::write_verilog(patch_text, net::aig_to_network(outcome.patch_module, "patch"));
  const net::Network patch_net = net::parse_verilog_string(patch_text.str());
  patch_net.validate();
  EXPECT_EQ(patch_net.outputs.size(), outcome.patch_module.num_pos());
}

}  // namespace
}  // namespace eco::core
