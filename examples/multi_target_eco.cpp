// multi_target_eco: rectifying several targets at once (paper §3.1).
//
// A 4-lane comparator bank gets a specification change touching three
// signals. The engine processes the targets one at a time, universally
// quantifying the not-yet-patched targets out of the ECO miter, so that
// every patch only covers the minterms that *no other target* could fix —
// Theorem 1 of the paper guarantees this sequential scheme succeeds exactly
// when the target set is sufficient.
//
// Build & run:  cmake --build build && ./build/examples/multi_target_eco

#include <cstdio>

#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "benchgen/weightgen.hpp"
#include "eco/engine.hpp"
#include "util/rng.hpp"

int main() {
  eco::Rng rng(77);
  const eco::net::Network base = eco::benchgen::make_comparator(6, 4);
  const eco::benchgen::EcoInstance instance =
      eco::benchgen::make_eco_instance(base, /*num_targets=*/3, rng);
  eco::Rng wrng(4242);
  const eco::net::WeightMap weights = eco::benchgen::make_weights(
      instance.impl, eco::benchgen::WeightType::kT4, wrng);

  std::printf("Instance: %zu-gate comparator bank, 3 targets:", base.num_gates());
  for (const auto& t : instance.target_names) std::printf(" %s", t.c_str());
  std::printf("\n\n");

  for (const auto algorithm : {eco::core::Algorithm::kBaseline,
                               eco::core::Algorithm::kMinimize,
                               eco::core::Algorithm::kSatPruneCegarMin}) {
    eco::core::EngineOptions options;
    options.algorithm = algorithm;
    options.time_budget = 30;
    const eco::core::EcoOutcome outcome =
        eco::core::run_eco(instance.impl, instance.spec, weights, options);
    static const char* kNames[] = {"baseline (analyze_final)", "minimize_assumptions",
                                   "SAT_prune + CEGAR_min"};
    std::printf("== %s ==\n", kNames[static_cast<int>(algorithm)]);
    if (outcome.status != eco::core::EcoOutcome::Status::kPatched) {
      std::printf("   failed (status %d)\n\n", static_cast<int>(outcome.status));
      continue;
    }
    std::printf("   cost %lld, %u patch gates, %.2fs, method %s, verified %s\n",
                static_cast<long long>(outcome.total_cost), outcome.patch_gates,
                outcome.seconds, outcome.method.c_str(),
                outcome.verified ? "yes" : "NO");
    for (const auto& target : outcome.targets) {
      std::printf("   %-12s <= %s\n", target.target_name.c_str(),
                  target.sop.empty() ? "(structural circuit)" : target.sop.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
