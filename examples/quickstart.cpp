// quickstart: the smallest complete ECO run.
//
// The old implementation computed y = t | c where the logic driving t has
// been cut out (t is a free input — the rectification point). The new
// specification wants y = (a & b) | c. The engine finds the patch t = ab,
// reusing the existing internal signal `ab` because it is the cheapest
// sufficient divisor.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <sstream>

#include "eco/engine.hpp"
#include "net/aignet.hpp"
#include "net/verilog.hpp"

int main() {
  // The old implementation. Contest convention: the target signal `t`
  // appears as an extra primary input.
  const eco::net::Network impl = eco::net::parse_verilog_string(R"(
    module impl (a, b, c, t, y, z);
      input a, b, c, t;
      output y, z;
      or  g1 (y, t, c);
      xor g2 (z, a, b);
      and g3 (ab, a, b);   // existing logic the patch can reuse
    endmodule
  )");

  // The new specification (no structural similarity assumed).
  const eco::net::Network spec = eco::net::parse_verilog_string(R"(
    module spec (a, b, c, y, z);
      input a, b, c;
      output y, z;
      and g1 (w, a, b);
      or  g2 (y, w, c);
      xor g3 (z, a, b);
    endmodule
  )");

  // Resource costs: using `ab` as a patch input is cheap, the raw inputs
  // are expensive (think: routing congestion near them).
  eco::net::WeightMap weights;
  weights.weights = {{"a", 5}, {"b", 5}, {"c", 2}, {"ab", 1}, {"y", 9}, {"z", 7}};

  eco::core::EngineOptions options;
  options.algorithm = eco::core::Algorithm::kMinimize;  // the contest-winning config
  const eco::core::EcoOutcome outcome = eco::core::run_eco(impl, spec, weights, options);

  if (outcome.status != eco::core::EcoOutcome::Status::kPatched) {
    std::printf("ECO failed (status %d)\n", static_cast<int>(outcome.status));
    return 1;
  }

  std::printf("ECO solved and verified in %.3fs\n", outcome.seconds);
  std::printf("  method      : %s\n", outcome.method.c_str());
  std::printf("  total cost  : %lld\n", static_cast<long long>(outcome.total_cost));
  std::printf("  patch gates : %u\n", outcome.patch_gates);
  for (const auto& target : outcome.targets) {
    std::printf("  target %-4s : %s   (inputs:", target.target_name.c_str(),
                target.sop.c_str());
    for (const auto& s : target.support) std::printf(" %s", s.c_str());
    std::printf(", cost %lld)\n", static_cast<long long>(target.support_cost));
  }

  // Export the patch as a contest-style Verilog module.
  std::ostringstream patch_v;
  eco::net::write_verilog(patch_v, eco::net::aig_to_network(outcome.patch_module, "patch"));
  std::printf("\npatch.v:\n%s", patch_v.str().c_str());
  return 0;
}
