// structural_fallback: the paper's §3.6 escape hatch.
//
// When the SAT-based flow runs out of budget, the engine derives a patch
// *structurally*: for one target the negative cofactor M(0, x) of the ECO
// miter is itself a valid patch in terms of primary inputs; for several
// targets the patches come from the 2QBF CEGAR certificate. CEGAR_min then
// shrinks the PI-based patch by re-expressing it over implementation signals
// found equivalent by simulation + SAT and chosen by a max-flow min-cut.
//
// This example forces the structural path (as a SAT timeout would) and
// contrasts plain structural output with the CEGAR_min-improved one.
//
// Build & run:  cmake --build build && ./build/examples/structural_fallback

#include <cstdio>

#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "benchgen/weightgen.hpp"
#include "eco/engine.hpp"
#include "util/rng.hpp"

int main() {
  eco::Rng rng(5150);
  const eco::net::Network base = eco::benchgen::make_parity_masks(24, 12, rng);
  const eco::benchgen::EcoInstance instance =
      eco::benchgen::make_eco_instance(base, /*num_targets=*/2, rng);
  eco::Rng wrng(99);
  const eco::net::WeightMap weights = eco::benchgen::make_weights(
      instance.impl, eco::benchgen::WeightType::kT1, wrng);

  std::printf("Instance: %zu-gate parity/mask network, 2 targets\n\n", base.num_gates());

  auto run = [&](bool cegar_min) {
    eco::core::EngineOptions options;
    options.algorithm = cegar_min ? eco::core::Algorithm::kSatPruneCegarMin
                                  : eco::core::Algorithm::kMinimize;
    options.force_structural = true;  // simulate the SAT-path timeout
    options.time_budget = 30;
    return eco::core::run_eco(instance.impl, instance.spec, weights, options);
  };

  const eco::core::EcoOutcome plain = run(false);
  const eco::core::EcoOutcome improved = run(true);

  auto report = [](const char* label, const eco::core::EcoOutcome& outcome) {
    std::printf("== %s ==\n", label);
    if (outcome.status != eco::core::EcoOutcome::Status::kPatched) {
      std::printf("   failed (status %d)\n\n", static_cast<int>(outcome.status));
      return;
    }
    std::printf("   method %s, cost %lld, %u patch gates, verified %s\n",
                outcome.method.c_str(), static_cast<long long>(outcome.total_cost),
                outcome.patch_gates, outcome.verified ? "yes" : "NO");
    for (const auto& target : outcome.targets) {
      std::printf("   %-10s : %zu inputs, cost %lld\n", target.target_name.c_str(),
                  target.support.size(), static_cast<long long>(target.support_cost));
    }
    std::printf("\n");
  };
  report("structural patch (PI support)", plain);
  report("structural + CEGAR_min (min-cut support)", improved);

  if (plain.status == eco::core::EcoOutcome::Status::kPatched &&
      improved.status == eco::core::EcoOutcome::Status::kPatched) {
    std::printf("CEGAR_min cost improvement: %lld -> %lld\n",
                static_cast<long long>(plain.total_cost),
                static_cast<long long>(improved.total_cost));
  }
  return 0;
}
