// resource_aware: how the weight distribution steers patch-support
// selection (paper §2.5 and §4.1).
//
// One ECO instance — an ALU whose bit-3 result logic changed — is solved
// under the contest's eight weight distributions T1..T8. The function of the
// patch is always the same; *where its inputs are tapped from* changes with
// the costs, which is exactly the resource-aware behaviour the 2017 CAD
// Contest scored.
//
// Build & run:  cmake --build build && ./build/examples/resource_aware

#include <cstdio>

#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "benchgen/weightgen.hpp"
#include "eco/engine.hpp"
#include "util/rng.hpp"

int main() {
  eco::Rng rng(2024);
  const eco::net::Network base = eco::benchgen::make_alu(8);
  const eco::benchgen::EcoInstance instance =
      eco::benchgen::make_eco_instance(base, /*num_targets=*/1, rng);

  std::printf("Instance: %zu-gate ALU, target signal '%s'\n\n",
              base.num_gates(), instance.target_names[0].c_str());
  std::printf("%-4s | %8s | %6s | %s\n", "wt", "cost", "gates", "patch inputs");

  for (int wt = 0; wt < 8; ++wt) {
    eco::Rng wrng(static_cast<uint64_t>(7000 + wt));
    const eco::net::WeightMap weights = eco::benchgen::make_weights(
        instance.impl, static_cast<eco::benchgen::WeightType>(wt), wrng);

    eco::core::EngineOptions options;
    options.algorithm = eco::core::Algorithm::kMinimize;
    options.time_budget = 20;
    const eco::core::EcoOutcome outcome =
        eco::core::run_eco(instance.impl, instance.spec, weights, options);

    if (outcome.status != eco::core::EcoOutcome::Status::kPatched) {
      std::printf("%-4s | ECO failed\n", eco::benchgen::weight_type_name(
                                             static_cast<eco::benchgen::WeightType>(wt)));
      continue;
    }
    std::printf("%-4s | %8lld | %6u |", eco::benchgen::weight_type_name(
                                            static_cast<eco::benchgen::WeightType>(wt)),
                static_cast<long long>(outcome.total_cost), outcome.patch_gates);
    for (const auto& s : outcome.targets[0].support) std::printf(" %s", s.c_str());
    std::printf("\n");
  }
  std::printf("\nThe same functional fix lands on different support signals as the\n"
              "weight landscape changes — the engine minimizes cost, not just size.\n");
  return 0;
}
