// contest_flow: the ICCAD'17-style file flow.
//
//   contest_flow <impl.v> <spec.v> <weights.txt> [patch.v]
//
// reads an old implementation (targets = inputs missing from the spec), a
// new specification and a weight file, runs the engine, prints the report
// and writes the patch netlist. Run without arguments to see the flow on a
// generated suite unit: the three files are first written to ./eco_demo/
// and then consumed again, exercising the full parser/writer round trip.
//
// Build & run:  cmake --build build && ./build/examples/contest_flow

#include <cstdio>
#include <filesystem>

#include "benchgen/suite.hpp"
#include "eco/engine.hpp"
#include "net/aignet.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"

int main(int argc, char** argv) {
  std::string impl_path, spec_path, weights_path, patch_path = "patch.v";
  if (argc >= 4) {
    impl_path = argv[1];
    spec_path = argv[2];
    weights_path = argv[3];
    if (argc >= 5) patch_path = argv[4];
  } else {
    // Demo mode: materialize suite unit 2 as contest-style files.
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(1);
    std::filesystem::create_directories("eco_demo");
    impl_path = "eco_demo/impl.v";
    spec_path = "eco_demo/spec.v";
    weights_path = "eco_demo/weights.txt";
    patch_path = "eco_demo/patch.v";
    eco::net::write_verilog_file(impl_path, unit.impl);
    eco::net::write_verilog_file(spec_path, unit.spec);
    eco::net::write_weights_file(weights_path, unit.weights);
    std::printf("demo files written to eco_demo/ (unit %s, weight type %s)\n\n",
                unit.name.c_str(), eco::benchgen::weight_type_name(unit.weight_type));
  }

  const eco::net::Network impl = eco::net::parse_verilog_file(impl_path);
  const eco::net::Network spec = eco::net::parse_verilog_file(spec_path);
  const eco::net::WeightMap weights = eco::net::parse_weights_file(weights_path);

  eco::core::EngineOptions options;
  options.algorithm = eco::core::Algorithm::kMinimize;
  options.time_budget = 60;
  const eco::core::EcoOutcome outcome = eco::core::run_eco(impl, spec, weights, options);

  switch (outcome.status) {
    case eco::core::EcoOutcome::Status::kInfeasible:
      std::printf("ECO infeasible: the target set cannot rectify the implementation.\n");
      return 1;
    case eco::core::EcoOutcome::Status::kUnknown:
      std::printf("ECO inconclusive within the budget.\n");
      return 2;
    case eco::core::EcoOutcome::Status::kPatched:
      break;
  }

  std::printf("patched & verified in %.2fs — cost %lld, %u gates, method %s\n",
              outcome.seconds, static_cast<long long>(outcome.total_cost),
              outcome.patch_gates, outcome.method.c_str());
  for (const auto& target : outcome.targets) {
    std::printf("  %-12s inputs:", target.target_name.c_str());
    for (const auto& s : target.support) std::printf(" %s", s.c_str());
    std::printf("\n");
  }
  eco::net::write_verilog_file(patch_path,
                               eco::net::aig_to_network(outcome.patch_module, "patch"));
  std::printf("patch written to %s\n", patch_path.c_str());
  return 0;
}
